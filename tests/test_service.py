"""Tests of the distributed campaign service layer.

Covers the structured campaign logger, the results service cache, the
coordinator's endpoints (both in-process and over real loopback HTTP),
the worker agent's poll/execute/report loop, and the CLI's subcommand
parser (including the back-compat shim for pre-subcommand invocations).
"""

import importlib.util
import io
import random
import threading
from pathlib import Path

import pytest

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import campaign_fingerprint
from repro.orchestration.logging import CampaignLogger
from repro.orchestration.store import ScenarioFailure
from repro.service import (
    CampaignCoordinator,
    CoordinatorClient,
    ResultsService,
    TABLE_NAMES,
    WorkerAgent,
    format_status,
    make_server,
)
from repro.stats import MinedPrior, SamplingPlan

from test_orchestration import synthetic_report


class TestCampaignLogger:
    def _logger(self, **kwargs):
        stream = io.StringIO()
        logger = CampaignLogger("worker-1", stream=stream, clock=lambda: 0.0, **kwargs)
        return logger, stream

    def test_line_format_has_timestamp_and_role(self):
        logger, stream = self._logger()
        logger.info("leased IS-SER-1-armv8")
        line = stream.getvalue()
        assert line.endswith(" [worker-1] leased IS-SER-1-armv8\n")
        stamp = line.split(" ", 1)[0]
        assert len(stamp.split(":")) == 3  # HH:MM:SS

    def test_levels_default_verbose_quiet(self):
        logger, stream = self._logger()
        logger.debug("hidden")
        logger.info("shown")
        assert "hidden" not in stream.getvalue() and "shown" in stream.getvalue()

        logger, stream = self._logger(verbose=True)
        logger.debug("now visible")
        assert "now visible" in stream.getvalue()

        logger, stream = self._logger(quiet=True)
        logger.info("suppressed")
        logger.warning("kept")
        logger.error("also kept")
        output = stream.getvalue()
        assert "suppressed" not in output
        assert "WARN kept" in output and "ERROR also kept" in output

    def test_quiet_wins_over_verbose(self):
        logger, stream = self._logger(verbose=True, quiet=True)
        logger.info("suppressed")
        assert stream.getvalue() == ""

    def test_progress_adapter_routes_retry_and_fail_to_warning(self):
        logger, stream = self._logger(quiet=True)
        emit = logger.progress()
        emit("[golden] IS-SER-1-armv8")  # info: dropped under --quiet
        emit("[retry] job 3 attempt 2")  # warning: kept
        emit("[fail] EP-SER-1-armv8 gave up")
        output = stream.getvalue()
        assert "[golden]" not in output
        assert "[retry] job 3 attempt 2" in output and "[fail]" in output

    def test_child_keeps_threshold_and_sink(self):
        logger, stream = self._logger(verbose=True)
        child = logger.child("worker-2")
        child.debug("from the child")
        assert "[worker-2] from the child" in stream.getvalue()


class TestCampaignConfigFromDict:
    def test_round_trip(self):
        config = CampaignConfig(faults_per_scenario=7, seed=99, keep_individual_results=True)
        assert CampaignConfig.from_dict(config.as_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign config keys.*bogus"):
            CampaignConfig.from_dict({"seed": 1, "bogus": True})


class TestResultsService:
    def test_database_cache_invalidated_by_new_shard(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        first = synthetic_report(app="IS", counts={"Vanished": 3})
        store.write_shard(first)
        service = ResultsService(store)
        assert len(service.database()) == 1
        assert service.database() is service.database()  # cached object
        assert service.cache_hits >= 2
        second = synthetic_report(app="EP", counts={"SDC": 2})
        store.write_shard(second)
        database = service.database()
        assert len(database) == 2  # mtime signature changed -> re-materialized
        assert database.outcome_totals()["SDC"] == 2

    def test_materializes_in_manifest_order(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        reports = {
            report.scenario_id: report
            for report in (
                synthetic_report(app="EP", counts={"Vanished": 1}),
                synthetic_report(app="IS", counts={"Vanished": 2}),
            )
        }
        order = sorted(reports, reverse=True)  # deliberately not sorted order
        store.write_manifest(order, CampaignConfig().as_dict(), None)
        for report in reports.values():
            store.write_shard(report)
        database = ResultsService(store).database()
        assert list(database.reports) == order

    def test_status_counts_and_failures(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 4})
        store.write_manifest([report.scenario_id, "B"], CampaignConfig().as_dict(), None)
        store.write_shard(report)
        store.write_failure(
            ScenarioFailure("B", "golden", "RuntimeError", "boom", attempts=2)
        )
        store.acquire_lease("B", "w9", ttl=60.0, now=1000.0)
        status = ResultsService(store).status(now=1010.0)
        assert status["scenarios"] == 2 and status["completed"] == 1
        assert status["pending"] == 1 and status["done"] is False
        assert status["injections"] == 4
        assert status["leased"] == [
            {"scenario_id": "B", "owner": "w9", "expires_in": 50.0}
        ]
        assert status["failures"][0]["error_type"] == "RuntimeError"

    def test_format_status_renders_failures_and_leases(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 4})
        store.write_manifest([report.scenario_id, "B"], CampaignConfig().as_dict(), None)
        store.write_shard(report)
        store.write_failure(
            ScenarioFailure("B", "golden", "RuntimeError", "boom", attempts=2)
        )
        rendered = format_status(ResultsService(store).status(now=1000.0))
        assert "1/2 completed" in rendered
        assert "failures: 1" in rendered
        assert "FAILED B [golden] RuntimeError: boom (attempt 2)" in rendered

    def test_unknown_table_rejected(self, tmp_path):
        service = ResultsService(CampaignStore(tmp_path / "store"))
        with pytest.raises(SimulatorError, match="unknown results table"):
            service.table("nope")

    def test_tables_render_from_shards(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 5, "SDC": 3})
        store.write_manifest([report.scenario_id], CampaignConfig().as_dict(), 8)
        store.write_shard(report)
        service = ResultsService(store)
        for name in TABLE_NAMES:
            table = service.table(name)
            assert table["table"] == name
            assert isinstance(table["rendered"], str) and table["rendered"]

    def test_fixed_count_status_has_no_adaptive_section(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 4})
        store.write_manifest([report.scenario_id], CampaignConfig().as_dict(), None)
        store.write_shard(report)
        status = ResultsService(store).status(now=1000.0)
        assert "adaptive" not in status
        assert "adaptive" not in format_status(status)

    def _adaptive_store(self, tmp_path):
        """A store with one finished adaptive shard, one in-flight partial,
        and one pending scenario."""
        store = CampaignStore(tmp_path / "store")
        plan = SamplingPlan(target_half_width=0.05)
        done = synthetic_report(app="IS", counts={"Vanished": 90, "UT": 14})
        done.adaptive = {
            "plan": plan.as_dict(),
            "spent": 104,
            "stopping": "converged",
            "batches": [{"size": 64}, {"size": 40}],
            "estimates": {
                "masked": {"half_width": 0.041},
                "UT": {"half_width": 0.048},
            },
        }
        flying = synthetic_report(app="EP", counts={})
        store.write_manifest(
            [done.scenario_id, flying.scenario_id, "CG-SER-1-armv8"],
            CampaignConfig().as_dict(),
            None,
            plan=plan.as_dict(),
        )
        store.write_shard(done)
        store.write_partial(
            flying.scenario_id,
            {"batches": [{"size": 64, "half_width": 0.2}, {"size": 48, "half_width": 0.11}]},
        )
        return store, done

    def test_status_reports_adaptive_progress(self, tmp_path):
        store, done = self._adaptive_store(tmp_path)
        status = ResultsService(store).status(now=1000.0)
        adaptive = status["adaptive"]
        assert adaptive["target_half_width"] == 0.05
        assert adaptive["spent_total"] == 104 + 64 + 48
        by_state = {entry["state"]: entry for entry in adaptive["scenarios"]}
        assert by_state["done"]["scenario_id"] == done.scenario_id
        assert by_state["done"]["spent"] == 104
        assert by_state["done"]["half_width"] == 0.048  # worst tracked rate
        assert by_state["done"]["stopping"] == "converged"
        assert by_state["in_flight"]["spent"] == 112
        assert by_state["in_flight"]["half_width"] == 0.11  # latest batch
        assert by_state["pending"]["spent"] == 0
        rendered = format_status(status)
        assert "adaptive: target half-width 0.05 at 95% confidence" in rendered
        assert f"{done.scenario_id}: done, spent 104, half-width 0.0480" in rendered
        assert "stop: converged" in rendered

    def test_efficiency_table_from_adaptive_store(self, tmp_path):
        store, done = self._adaptive_store(tmp_path)
        table = ResultsService(store).table("efficiency_table")
        assert len(table["rows"]) == 1  # in-flight and pending scenarios excluded
        row = table["rows"][0]
        assert row["scenario"] == done.scenario_id
        assert row["fixed_equivalent"] == 385  # ceil(1.96^2 * 0.25 / 0.05^2)
        assert row["saving"] == pytest.approx(385 / 104)
        assert "average saving" in table["rendered"]


SCENARIOS = [Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")]
CONFIG = CampaignConfig(faults_per_scenario=6, seed=7)


class TestCoordinatorEndpoints:
    """The coordinator's endpoint methods, exercised without HTTP."""

    def _coordinator(self, tmp_path, **kwargs):
        return CampaignCoordinator(
            CampaignStore(tmp_path / "store"), SCENARIOS, CONFIG, **kwargs
        )

    def test_lease_grant_carries_campaign_identity(self, tmp_path):
        coordinator = self._coordinator(tmp_path, lease_ttl=45.0)
        grant = coordinator.lease("w1")
        assert grant["scenario"]["app"] == "IS"  # manifest order
        assert grant["config"] == CONFIG.as_dict()
        assert grant["lease_ttl"] == 45.0
        assert coordinator.lease_grants == {"IS-SER-1-armv8": 1}
        assert coordinator.grant_log == [("IS-SER-1-armv8", "w1")]
        # everything leased out: peers get null but not done
        coordinator.lease("w2")
        idle = coordinator.lease("w3")
        assert idle == {"scenario": None, "done": False}

    def test_complete_commits_and_finishes_the_campaign(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        runner = CampaignRunner(CONFIG, workers=0)
        while True:
            grant = coordinator.lease("w1")
            if grant["scenario"] is None:
                break
            scenario = Scenario.from_dict(grant["scenario"])
            report = runner.run_one(scenario, grant["faults"])
            response = coordinator.complete("w1", scenario.scenario_id, report.to_payload())
            assert response["ok"] is True
        assert coordinator.done is True
        status = coordinator.status()
        assert status["done"] is True and status["completed"] == 2
        assert all(count == 1 for count in status["lease_grants"].values())

    def test_complete_rejects_mismatched_scenario_id(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        coordinator.lease("w1")
        payload = synthetic_report(counts={"Vanished": 1}).to_payload()
        with pytest.raises(SimulatorError, match="names"):
            coordinator.complete("w1", "SOMETHING-ELSE", payload)

    def test_complete_refused_without_lease(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        grant = coordinator.lease("w1")
        sid = Scenario.from_dict(grant["scenario"]).scenario_id
        report = synthetic_report(counts={"Vanished": 1})
        assert report.scenario_id == sid  # synthetic default is IS-SER-1-armv8
        assert coordinator.complete("w2", sid, report.to_payload()) == {"ok": False}
        assert coordinator.store.completed_ids() == set()

    def test_fail_records_failure_and_quarantines_the_scenario(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        grant = coordinator.lease("w1")
        sid = Scenario.from_dict(grant["scenario"]).scenario_id
        response = coordinator.fail("w1", sid, "run", "RuntimeError", "boom")
        assert response == {"ok": True, "attempts": 1}
        assert coordinator.store.read_lease(sid) is None  # lease freed
        # quarantined for this coordinator's lifetime: the next grant
        # moves on instead of handing the broken scenario out again
        regrant = coordinator.lease("w2")
        other = Scenario.from_dict(regrant["scenario"]).scenario_id
        assert other != sid
        coordinator.fail("w2", other, "run", "RuntimeError", "boom")
        # everything pending has failed: workers are told to stop
        assert coordinator.lease("w3") == {"scenario": None, "done": True}
        assert coordinator.done is True
        status = coordinator.status()
        assert sorted(f["scenario_id"] for f in status["failures"]) == sorted([sid, other])
        assert status["done"] is False  # failed is not completed

    def test_fixed_count_grant_has_no_adaptive_keys(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        grant = coordinator.lease("w1")
        assert "plan" not in grant and "prior" not in grant and "partial" not in grant

    def test_adaptive_grant_carries_plan_prior_and_partial(self, tmp_path):
        plan = SamplingPlan(target_half_width=0.1, min_faults=16, batch_size=16)
        prior = MinedPrior(cells={"armv8|gpr|0|0": {"Vanished": 5}}, scenarios=1)
        coordinator = self._coordinator(tmp_path, plan=plan, prior=prior)
        first_id = next(iter(coordinator.by_id))
        checkpoint = {"scenario_id": first_id, "batches": [{"size": 16}], "results": []}
        coordinator.store.write_partial(first_id, checkpoint)
        grant = coordinator.lease("w1")
        assert grant["plan"] == plan.as_dict()
        assert grant["prior"] == prior.as_dict()
        # a reclaimed scenario resumes its predecessor's batch stream
        assert grant["partial"] == checkpoint
        second = coordinator.lease("w2")
        assert second["partial"] is None  # never checkpointed

    def test_checkpoint_commits_iff_lease_held(self, tmp_path):
        plan = SamplingPlan(target_half_width=0.1, min_faults=16, batch_size=16)
        coordinator = self._coordinator(tmp_path, plan=plan)
        grant = coordinator.lease("w1")
        sid = Scenario.from_dict(grant["scenario"]).scenario_id
        payload = {"scenario_id": sid, "batches": [{"size": 16}], "results": []}
        assert coordinator.checkpoint("w1", sid, payload) == {"ok": True}
        assert coordinator.store.load_partial(sid) == payload
        # a stalled predecessor must not clobber the reclaimer's stream
        assert coordinator.checkpoint("w2", sid, {"batches": []}) == {"ok": False}
        assert coordinator.store.load_partial(sid) == payload

    def test_restarted_coordinator_retries_failures_once(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        grant = coordinator.lease("w1")
        sid = Scenario.from_dict(grant["scenario"]).scenario_id
        coordinator.fail("w1", sid, "run", "RuntimeError", "boom")
        # a restart with resume=True re-grants the failed scenario and
        # carries the attempts counter across lifetimes
        revived = self._coordinator(tmp_path, resume=True)
        regrant = revived.lease("w1")
        assert Scenario.from_dict(regrant["scenario"]).scenario_id == sid
        assert revived.fail("w1", sid, "run", "RuntimeError", "boom")["attempts"] == 2


@pytest.fixture()
def http_coordinator(tmp_path):
    """A live loopback coordinator server; yields (coordinator, base_url)."""
    coordinator = CampaignCoordinator(
        CampaignStore(tmp_path / "store"), SCENARIOS, CONFIG, lease_ttl=60.0
    )
    server = make_server(coordinator)  # port 0: ephemeral
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield coordinator, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestDistributedCampaign:
    """Coordinator + worker agents over real loopback HTTP."""

    def test_two_workers_match_local_run_bit_for_bit(self, http_coordinator):
        coordinator, url = http_coordinator
        agents = [
            WorkerAgent(url, worker_id=f"w{i}", poll_interval=0.05, backoff_max=0.2)
            for i in (1, 2)
        ]
        threads = [threading.Thread(target=agent.run) for agent in agents]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert coordinator.done is True
        assert sum(agent.completed for agent in agents) == len(SCENARIOS)
        assert all(agent.failed == 0 and agent.discarded == 0 for agent in agents)
        assert sorted(coordinator.lease_grants.values()) == [1, 1]  # nothing ran twice
        local = CampaignRunner(CONFIG, workers=0).run_suite(SCENARIOS)
        distributed = coordinator.results.database()
        assert campaign_fingerprint(distributed) == campaign_fingerprint(local)

    def test_status_and_results_endpoints_over_http(self, http_coordinator):
        coordinator, url = http_coordinator
        client = CoordinatorClient(url)
        status = client.get("/status")
        assert status["scenarios"] == 2 and status["completed"] == 0
        WorkerAgent(url, worker_id="w1", poll_interval=0.05).run()
        status = client.get("/status")
        assert status["done"] is True
        table = client.get("/results/table1")
        assert table["table"] == "table1" and table["rendered"]
        with pytest.raises(SimulatorError, match="unknown results table"):
            client.get("/results/nope")
        with pytest.raises(SimulatorError, match="unknown endpoint"):
            client.post("/bogus", {})

    def test_fail_endpoint_surfaces_in_status(self, http_coordinator):
        coordinator, url = http_coordinator
        client = CoordinatorClient(url)
        grant = client.post("/lease", {"worker": "w1"})
        sid = Scenario.from_dict(grant["scenario"]).scenario_id
        client.post(
            "/fail",
            {"worker": "w1", "scenario_id": sid,
             "phase": "run", "error_type": "RuntimeError", "error": "boom"},
        )
        status = client.get("/status")
        assert len(status["failures"]) == 1
        assert status["failures"][0]["phase"] == "run"
        assert f"FAILED {sid} [run] RuntimeError: boom" in format_status(status)

    def test_worker_stop_request_ends_the_loop(self, http_coordinator):
        _, url = http_coordinator
        agent = WorkerAgent(url, worker_id="w1", poll_interval=0.05)
        agent.request_stop()
        assert agent.run() == 0  # drains immediately, no scenario taken
        assert agent.stopping is True


class TestWorkerBackoff:
    def test_backoff_grows_and_respects_ceiling(self):
        import random

        agent = WorkerAgent(
            "http://127.0.0.1:1", poll_interval=1.0, backoff_max=8.0,
            rng=random.Random(0),
        )
        delays = [agent._backoff(attempt) for attempt in range(8)]
        # jitter keeps every delay within [0.5, 1.0] x the exponential curve
        for attempt, delay in enumerate(delays):
            ceiling = min(8.0, 2.0 ** attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_unreachable_coordinator_gives_up_eventually(self):
        from repro.service import CoordinatorUnreachable

        waits = []
        agent = WorkerAgent(
            "http://127.0.0.1:1",  # nothing listens on port 1
            poll_interval=0.01, backoff_max=0.02, max_connect_failures=3,
            sleep=waits.append,
        )
        agent.client.timeout = 0.2
        # client-level request retries are exercised separately (see
        # TestCoordinatorClientRetries); here we count agent attempts
        agent.client.retries = 0
        with pytest.raises(CoordinatorUnreachable, match="after 3 attempts"):
            agent.run()
        assert len(waits) == 2  # backed off twice before the third strike


class TestCoordinatorClientRetries:
    """Per-request transport retries: transient failures absorbed with
    jittered backoff, HTTP-level rejections never retried."""

    def _client(self, retries=3):
        stream = io.StringIO()
        logger = CampaignLogger("w9", stream=stream, clock=lambda: 0.0)
        waits = []
        client = CoordinatorClient(
            "http://example.invalid", retries=retries,
            backoff_base=0.5, backoff_max=8.0, logger=logger,
            rng=random.Random(0), sleep=waits.append,
        )
        return client, waits, stream

    def test_transient_failures_retried_with_jittered_backoff(self):
        client, waits, stream = self._client()
        calls = {"n": 0}

        def flaky(path, payload=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ConnectionError("coordinator unreachable: timed out")
            return {"ok": True}

        client._request_once = flaky
        assert client.post("/lease", {"worker": "w9"}) == {"ok": True}
        assert calls["n"] == 3
        # jitter keeps every delay within [0.5, 1.0] x the exponential curve
        assert len(waits) == 2
        for attempt, delay in enumerate(waits):
            ceiling = min(8.0, 0.5 * 2.0 ** attempt)
            assert 0.5 * ceiling <= delay <= ceiling
        output = stream.getvalue()
        assert "[w9]" in output  # role-prefixed, attributable in fleet logs
        assert "transient failure on /lease (attempt 1/4)" in output
        assert "retrying in" in output

    def test_bounded_retries_then_raises(self):
        client, waits, _ = self._client(retries=2)

        def dead(path, payload=None):
            raise ConnectionError("coordinator unreachable: refused")

        client._request_once = dead
        with pytest.raises(ConnectionError, match="refused"):
            client.get("/status")
        assert len(waits) == 2  # retried twice, then the third failure escaped

    def test_http_rejection_never_retried(self):
        # The coordinator answered and said no: retrying cannot help and
        # could double-apply a commit.
        client, waits, _ = self._client()
        calls = {"n": 0}

        def reject(path, payload=None):
            calls["n"] += 1
            raise SimulatorError("coordinator rejected /complete: no lease")

        client._request_once = reject
        with pytest.raises(SimulatorError, match="rejected"):
            client.post("/complete", {"worker": "w9"})
        assert calls["n"] == 1 and waits == []

    def test_real_connect_failure_maps_to_retried_connection_error(self):
        # The URLError/socket path end to end: nothing listens on port 1.
        client, waits, _ = self._client(retries=2)
        client.base_url = "http://127.0.0.1:1"
        client.timeout = 0.2
        with pytest.raises(ConnectionError, match="unreachable"):
            client.get("/status")
        assert len(waits) == 2


class TestLeaseLivenessUnderRecovery:
    """Rollback re-execution happens under a held lease: the heartbeat
    must keep the lease alive through every retry, and commit-iff-held
    must reject a result whose lease was lost mid-recovery."""

    SCENARIO = Scenario("IS", "serial", 1, "armv7", hardening="dwc+rec")
    CONFIG = CampaignConfig(faults_per_scenario=40, seed=2018, checkpoint_interval=1000)

    def test_multi_rollback_scenario_keeps_heartbeating(self, tmp_path):
        # A short ttl makes the heartbeat renew several times while the
        # injection batch (rollbacks included) runs; losing the lease
        # would discard the shard.
        store = CampaignStore(tmp_path / "store")
        runner = CampaignRunner(self.CONFIG, workers=0)
        database = runner.run_leased(
            [self.SCENARIO], store=store, owner="w1", lease_ttl=1.0
        )
        scenario_id = self.SCENARIO.scenario_id
        report = database.reports[scenario_id]
        assert report.recovery["rollbacks"] >= 1  # recovery really ran mid-lease
        assert scenario_id in store.completed_ids()  # lease never lost; shard committed
        assert store.read_lease(scenario_id) is None  # and released afterwards

    def test_commit_rejected_after_forced_expiry_during_recovery(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        scenario_id = self.SCENARIO.scenario_id

        class StolenLeaseRunner(CampaignRunner):
            def run_one(self, scenario, faults=None, pool=None, **kwargs):
                report = super().run_one(scenario, faults, pool, **kwargs)
                # forced expiry mid-recovery: the lease vanishes and a
                # peer reclaims the scenario before we try to commit
                assert store.release_lease(scenario_id, "w1") is True
                assert store.acquire_lease(scenario_id, "thief", ttl=60.0) is not None
                return report

        database = StolenLeaseRunner(self.CONFIG, workers=0).run_leased(
            [self.SCENARIO], store=store, owner="w1", lease_ttl=60.0
        )
        # commit-iff-held refused the stale result: no shard, no report
        assert scenario_id not in store.completed_ids()
        assert len(database) == 0


class TestCommandLineParser:
    """The restructured run_campaign.py CLI, including the compat shim."""

    @pytest.fixture(scope="class")
    def cli(self):
        path = Path(__file__).resolve().parent.parent / "scripts" / "run_campaign.py"
        spec = importlib.util.spec_from_file_location("run_campaign_cli", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_subcommands_exist(self, cli):
        assert cli.SUBCOMMANDS == ("run", "serve", "work", "status", "analyze")

    def test_run_flags_preserved(self, cli):
        args = cli.parse_args(
            ["run", "--apps", "IS", "--faults", "12", "--seed", "3", "--workers", "2"]
        )
        assert args.command == "run"
        assert args.apps == ["IS"] and args.faults == 12 and args.seed == 3

    def test_legacy_invocation_is_rewritten_to_run(self, cli):
        """Pre-subcommand argv (`run_campaign.py --apps IS`) still parses."""
        args = cli.parse_args(["--apps", "IS", "--faults", "12"])
        assert args.command == "run"
        assert args.apps == ["IS"] and args.faults == 12

    def test_every_subcommand_has_logging_flags(self, cli):
        for argv in (
            ["run", "--quiet"],
            ["serve", "--store", "s", "--verbose"],
            ["work", "--coordinator", "http://x", "--quiet"],
            ["status", "--store", "s", "--verbose"],
        ):
            args = cli.parse_args(argv)
            assert hasattr(args, "quiet") and hasattr(args, "verbose")

    def test_serve_requires_store_and_work_requires_coordinator(self, cli):
        with pytest.raises(SystemExit):
            cli.parse_args(["serve"])
        with pytest.raises(SystemExit):
            cli.parse_args(["work"])
