"""Tests of the statistical campaign engine: estimators, strata, plans,
priors, the adaptive controller, and cross-driver bit-identity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.efficiency_table import (
    average_saving,
    efficiency_rows,
    fixed_equivalent,
    render_efficiency_table,
)
from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.injection.classify import NOT_INJECTED
from repro.injection.injector import FaultInjector
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.runner import CampaignRunner
from repro.orchestration.store import CampaignStore
from repro.stats import (
    STOP_CONVERGED,
    AdaptiveController,
    MinedPrior,
    SamplingPlan,
    binomial_interval,
    clopper_pearson,
    confidence_z,
    max_half_width,
    normal_quantile,
    outcome_estimates,
    post_stratified,
    rank_buckets,
    rank_order,
    smoothed_variance,
    time_bin_counts,
    time_bin_of,
    wilson_interval,
)

# ----------------------------------------------------------------------
# quantiles and intervals
# ----------------------------------------------------------------------


class TestNormalQuantile:
    def test_known_critical_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert confidence_z(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_symmetry(self):
        for p in (0.01, 0.2, 0.4):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1.0 - p), abs=1e-9)

    def test_rejects_boundaries(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                normal_quantile(p)


class TestBinomialIntervals:
    def test_contains_point_estimate(self):
        for successes, trials in [(0, 10), (3, 10), (10, 10), (500, 1000)]:
            for method in ("wilson", "clopper-pearson"):
                lower, upper = binomial_interval(successes, trials, 0.95, method)
                assert 0.0 <= lower <= successes / trials <= upper <= 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert clopper_pearson(0, 0) == (0.0, 1.0)

    def test_zero_successes(self):
        lower, upper = wilson_interval(0, 50)
        assert lower == 0.0
        assert 0.0 < upper < 0.2
        lower, upper = clopper_pearson(0, 50)
        assert lower == 0.0
        # Exact one-sided bound: 1 - (alpha/2)^(1/n)
        assert upper == pytest.approx(1.0 - 0.025 ** (1.0 / 50.0), abs=1e-6)

    def test_all_successes_mirror_zero(self):
        lo0, hi0 = clopper_pearson(0, 30)
        lo1, hi1 = clopper_pearson(30, 30)
        assert lo1 == pytest.approx(1.0 - hi0, abs=1e-9)
        assert hi1 == 1.0 and lo0 == 0.0

    def test_clopper_pearson_is_conservative(self):
        for successes, trials in [(2, 20), (10, 40), (77, 100)]:
            w_lo, w_hi = wilson_interval(successes, trials)
            c_lo, c_hi = clopper_pearson(successes, trials)
            assert c_hi - c_lo >= w_hi - w_lo

    def test_width_shrinks_with_trials(self):
        widths = []
        for trials in (10, 100, 1000):
            lower, upper = wilson_interval(trials // 4, trials)
            widths.append(upper - lower)
        assert widths == sorted(widths, reverse=True)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown interval method"):
            binomial_interval(1, 10, method="wald")

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            clopper_pearson(-1, 3)


# ----------------------------------------------------------------------
# rate estimates over outcome counts
# ----------------------------------------------------------------------


class TestOutcomeEstimates:
    def test_not_injected_excluded_from_denominator(self):
        counts = {"Vanished": 30, "UT": 10, NOT_INJECTED: 60}
        estimates = outcome_estimates(counts)
        assert estimates["masked"].trials == 40
        assert estimates["masked"].estimate == pytest.approx(0.75)
        assert estimates["UT"].estimate == pytest.approx(0.25)

    def test_all_not_injected_yields_vacuous_intervals(self):
        estimates = outcome_estimates({NOT_INJECTED: 25})
        for estimate in estimates.values():
            assert estimate.trials == 0
            assert estimate.estimate == 0.0
            assert (estimate.lower, estimate.upper) == (0.0, 1.0)
            assert estimate.half_width == 0.5

    def test_zero_successes_rate(self):
        estimates = outcome_estimates({"Vanished": 40})
        hang = estimates["Hang"]
        assert hang.successes == 0 and hang.lower == 0.0 and hang.upper > 0.0

    def test_max_half_width_empty_is_one(self):
        assert max_half_width({}) == 1.0

    def test_as_dict_round(self):
        estimate = outcome_estimates({"Vanished": 9, "UT": 1})["masked"]
        payload = estimate.as_dict()
        assert payload["successes"] == 9 and payload["trials"] == 10
        assert payload["half_width"] == pytest.approx(estimate.half_width)


# ----------------------------------------------------------------------
# post-stratified estimation
# ----------------------------------------------------------------------

_cells = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=3),
    st.tuples(st.integers(0, 50), st.integers(1, 50)).map(
        lambda pair: (min(pair), max(pair))
    ),
    min_size=1,
    max_size=8,
)


class TestPostStratified:
    def test_empty_is_fully_unsampled(self):
        estimate = post_stratified({}, {"a": 1.0})
        assert estimate.unsampled_weight == 1.0
        assert estimate.half_width == 1.0

    def test_unsampled_stratum_widens_interval(self):
        cells = {"a": (5, 10), "b": (0, 0)}
        probabilities = {"a": 0.7, "b": 0.3}
        estimate = post_stratified(cells, probabilities)
        assert estimate.unsampled_weight == pytest.approx(0.3)
        assert estimate.half_width >= 0.3

    @given(_cells)
    @settings(max_examples=50, deadline=None)
    def test_observed_share_weights_reduce_to_pooled(self, cells):
        """Post-stratified == plain pooled estimator under uniform
        (observed-share) strata — the satellite property of the issue."""
        estimate = post_stratified(cells)
        total_trials = sum(trials for _, trials in cells.values())
        total_successes = sum(successes for successes, _ in cells.values())
        assert estimate.estimate == pytest.approx(total_successes / total_trials, abs=1e-12)
        assert estimate.trials == total_trials

    @given(_cells)
    @settings(max_examples=25, deadline=None)
    def test_explicit_proportional_weights_match_observed_share(self, cells):
        total = sum(trials for _, trials in cells.values())
        probabilities = {key: trials / total for key, (_, trials) in cells.items()}
        implicit = post_stratified(cells)
        explicit = post_stratified(cells, probabilities)
        assert explicit.estimate == pytest.approx(implicit.estimate, abs=1e-12)
        assert explicit.variance == pytest.approx(implicit.variance, abs=1e-12)

    def test_variance_override_is_used(self):
        cells = {"a": (5, 10)}
        default = post_stratified(cells, {"a": 1.0})
        overridden = post_stratified(cells, {"a": 1.0}, variance_of={"a": 0.0})
        assert overridden.variance == 0.0
        assert default.variance > 0.0

    def test_smoothed_variance_never_zero(self):
        assert smoothed_variance(0, 10) > 0.0
        assert smoothed_variance(10, 10) > 0.0
        assert smoothed_variance(5, 10) == pytest.approx(
            (5.5 * 5.5) / (11.0 * 11.0)
        )


# ----------------------------------------------------------------------
# stratification
# ----------------------------------------------------------------------


class TestStrata:
    def test_time_bin_counts_partition_the_span(self):
        for total, bins in [(101, 4), (17, 8), (2, 4), (1000, 7)]:
            counts = time_bin_counts(total, bins)
            assert sum(counts) == total - 1
            assert len(counts) == bins

    def test_time_bin_of_agrees_with_counts(self):
        total, bins = 53, 6
        seen = [0] * bins
        for t in range(1, total):
            seen[time_bin_of(t, total, bins)] += 1
        assert tuple(seen) == time_bin_counts(total, bins)

    def test_rank_order_sorts_by_ace_descending(self):
        order = rank_order({0: 0.1, 1: 0.9, 2: 0.5}, 4)
        assert order == (1, 2, 0, 3)  # register 3 has no ACE -> last

    def test_rank_buckets_partition_registers(self):
        order = tuple(range(16))
        mapping = rank_buckets(order, 4)
        assert sorted(mapping) == list(range(16))
        assert set(mapping.values()) == {0, 1, 2, 3}
        # Even split: 4 registers per bucket
        for bucket in range(4):
            assert sum(1 for b in mapping.values() if b == bucket) == 4

    def test_stratum_probabilities_sum_to_one(self, stats_campaign):
        campaign, _ = stats_campaign
        controller = AdaptiveController(campaign=campaign, plan=PLAN)
        probabilities = controller.space.probabilities()
        assert sum(probabilities.values()) == pytest.approx(1.0, abs=1e-9)
        assert list(probabilities) == sorted(probabilities)


# ----------------------------------------------------------------------
# plans and priors
# ----------------------------------------------------------------------


class TestSamplingPlan:
    def test_round_trip(self):
        plan = SamplingPlan(target_half_width=0.01, batch_size=32, track=("masked", "UT"))
        assert SamplingPlan.from_dict(plan.as_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sampling plan keys"):
            SamplingPlan.from_dict({"target_half_width": 0.02, "surprise": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_half_width": 0.0},
            {"target_half_width": 0.6},
            {"confidence": 1.0},
            {"batch_size": 0},
            {"min_faults": 10, "max_faults": 5},
            {"method": "wald"},
            {"track": ("masked", "bogus")},
            {"track": ()},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SamplingPlan(**kwargs)


class TestMinedPrior:
    def test_round_trip(self):
        prior = MinedPrior(
            cells={"armv7|gpr|3|0": {"Vanished": 7, "UT": 3}},
            fb_by_isa={"armv7": 1.5},
            scenarios=2,
        )
        assert MinedPrior.from_dict(prior.as_dict()).as_dict() == prior.as_dict()

    def test_unmined_cell_returns_none(self):
        prior = MinedPrior()
        assert prior.stratum_variance("armv7", "gpr", [0], 0.0, 0.25, ("masked",)) is None

    def test_fb_tilt_caps_and_defaults(self):
        prior = MinedPrior(fb_by_isa={"armv7": 100.0})
        assert prior.fb_tilt("armv7", 0.875, 1.0) == 2.0  # capped at FB_TILT_CAP
        assert prior.fb_tilt("armv7", 0.0, 0.25) == 1.0  # not a tail bin
        assert prior.fb_tilt("armv8", 0.875, 1.0) == 1.0  # unmined isa


# ----------------------------------------------------------------------
# the adaptive controller, end to end on a real scenario
# ----------------------------------------------------------------------

PLAN = SamplingPlan(
    target_half_width=0.1, min_faults=32, max_faults=512, batch_size=32
)
CONFIG = CampaignConfig(seed=2018)
SCENARIO = Scenario(app="IS", mode="serial", isa="armv7", cores=1)


@pytest.fixture(scope="module")
def stats_campaign():
    """One golden-complete campaign plus its adaptive reference report."""
    campaign = ScenarioCampaign(SCENARIO, CONFIG)
    campaign.run_golden()
    reference = campaign.run_adaptive(PLAN)
    return campaign, reference


class TestAdaptiveController:
    def test_converges_below_fixed_equivalent(self, stats_campaign):
        _, reference = stats_campaign
        adaptive = reference.adaptive
        assert adaptive["stopping"] == STOP_CONVERGED
        widths = [e["half_width"] for e in adaptive["estimates"].values()]
        assert max(widths) <= PLAN.target_half_width
        assert adaptive["spent"] < fixed_equivalent(PLAN.target_half_width, PLAN.confidence)

    def test_deterministic_across_fresh_controllers(self, stats_campaign):
        campaign, reference = stats_campaign
        again = ScenarioCampaign(SCENARIO, CONFIG).run_adaptive(PLAN)
        assert again.adaptive == reference.adaptive
        assert again.counts == reference.counts

    def test_single_batch_convergence(self, stats_campaign):
        campaign, _ = stats_campaign
        loose = SamplingPlan(
            target_half_width=0.4, min_faults=8, max_faults=512, batch_size=64
        )
        report = ScenarioCampaign(SCENARIO, CONFIG).run_adaptive(loose)
        assert report.adaptive["stopping"] == STOP_CONVERGED
        assert len(report.adaptive["batches"]) == 1

    def test_budget_stop(self):
        tight = SamplingPlan(
            target_half_width=0.005, min_faults=8, max_faults=64, batch_size=32
        )
        report = ScenarioCampaign(SCENARIO, CONFIG).run_adaptive(tight)
        assert report.adaptive["stopping"] == "max_faults"
        assert report.adaptive["spent"] == 64

    def test_restore_rebuilds_identical_state(self, stats_campaign):
        campaign, reference = stats_campaign
        fresh = ScenarioCampaign(SCENARIO, CONFIG)
        fresh.run_golden()
        driven = AdaptiveController(campaign=fresh, plan=PLAN)
        injected = []
        injector = FaultInjector(fresh.scenario, fresh.golden)
        while True:
            batch = driven.next_batch()
            if batch is None:
                break
            results = sorted(injector.run_many(batch.faults), key=lambda r: r.fault.fault_id)
            driven.record_batch(batch, results)
            injected.extend(results)
        restored = AdaptiveController(campaign=fresh, plan=PLAN)
        restored.restore(driven.batches, injected)
        assert restored.summary() == driven.summary()

    def test_restore_rejects_truncated_results(self, stats_campaign):
        campaign, reference = stats_campaign
        fresh = ScenarioCampaign(SCENARIO, CONFIG)
        fresh.run_golden()
        controller = AdaptiveController(campaign=fresh, plan=PLAN)
        with pytest.raises(ValueError, match="truncated"):
            controller.restore(reference.adaptive["batches"], [])

    def test_report_record_carries_adaptive_columns(self, stats_campaign):
        _, reference = stats_campaign
        record = reference.as_record()
        assert record["adaptive_spent"] == reference.adaptive["spent"]
        assert record["adaptive_stopping"] == STOP_CONVERGED
        assert 0.0 < record["adaptive_ci_half_width"] <= PLAN.target_half_width


class TestAdaptiveDrivers:
    """Every execution driver must reproduce the reference bit-for-bit."""

    def test_runner_suite_matches_reference(self, stats_campaign, tmp_path):
        _, reference = stats_campaign
        runner = CampaignRunner(config=CONFIG, plan=PLAN)
        database = runner.run_suite([SCENARIO], store=tmp_path / "store")
        report = database.get(SCENARIO.scenario_id)
        assert report.adaptive == reference.adaptive
        assert report.counts == reference.counts
        store = CampaignStore(tmp_path / "store")
        assert store.read_manifest()["plan"] == PLAN.as_dict()
        assert store.partial_ids() == set()  # cleared on completion

    def test_checkpoint_resume_matches_straight_run(self, stats_campaign):
        _, reference = stats_campaign
        checkpoints = []
        runner = CampaignRunner(config=CONFIG, plan=PLAN)
        runner.run_one(SCENARIO, checkpoint=lambda sid, payload: checkpoints.append(payload))
        assert checkpoints, "multi-batch run must checkpoint at least once"
        resumed = CampaignRunner(config=CONFIG, plan=PLAN).run_one(
            SCENARIO, partial=checkpoints[0]
        )
        assert resumed.adaptive == reference.adaptive
        assert resumed.counts == reference.counts

    def test_leased_driver_matches_reference(self, stats_campaign, tmp_path):
        _, reference = stats_campaign
        runner = CampaignRunner(config=CONFIG, plan=PLAN)
        database = runner.run_leased([SCENARIO], store=tmp_path / "store", owner="w0")
        report = database.get(SCENARIO.scenario_id)
        assert report.adaptive == reference.adaptive

    def test_shard_round_trip_preserves_adaptive(self, stats_campaign, tmp_path):
        _, reference = stats_campaign
        store = CampaignStore(tmp_path / "store")
        store.write_shard(reference)
        assert store.load_shard(SCENARIO.scenario_id).adaptive == reference.adaptive

    def test_fixed_count_payload_has_no_adaptive_keys(self, stats_campaign):
        campaign, _ = stats_campaign
        fixed = ScenarioCampaign(SCENARIO, CONFIG).run(count=8)
        assert fixed.adaptive is None
        assert "adaptive" not in fixed.to_payload()
        assert not any(key.startswith("adaptive_") for key in fixed.as_record())

    def test_write_partial_requires_lease(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        assert store.write_partial_leased("S1", {"batches": []}, "nobody") is False
        store.acquire_lease("S1", "holder", ttl=60.0)
        assert store.write_partial_leased("S1", {"batches": []}, "holder") is True
        assert store.load_partial("S1") == {"batches": []}
        assert store.write_partial_leased("S1", {}, "impostor") is False


# ----------------------------------------------------------------------
# efficiency table
# ----------------------------------------------------------------------


class TestEfficiencyTable:
    def test_fixed_equivalent_known_values(self):
        # ceil(1.96^2 * 0.25 / w^2)
        assert fixed_equivalent(0.05, 0.95) == 385
        assert fixed_equivalent(0.02, 0.95) == 2401
        assert fixed_equivalent(0.01, 0.95) == 9604

    def test_fixed_equivalent_rejects_bad_width(self):
        with pytest.raises(SimulatorError):
            fixed_equivalent(0.0, 0.95)

    def test_rows_and_average(self, stats_campaign):
        _, reference = stats_campaign
        database = ResultsDatabase()
        database.add_report(reference)
        rows = efficiency_rows(database, PLAN.as_dict())
        assert len(rows) == 1
        row = rows[0]
        assert row["fixed_equivalent"] == fixed_equivalent(
            PLAN.target_half_width, PLAN.confidence
        )
        assert row["saving"] == pytest.approx(row["fixed_equivalent"] / row["spent"])
        assert average_saving(rows) == pytest.approx(row["saving"])
        rendered = render_efficiency_table(rows)
        assert SCENARIO.scenario_id in rendered and "average saving" in rendered

    def test_fixed_count_reports_are_skipped(self):
        database = ResultsDatabase()
        fixed = ScenarioCampaign(SCENARIO, CONFIG).run(count=4)
        database.add_report(fixed)
        assert efficiency_rows(database) == []
        assert average_saving([]) == 0.0
