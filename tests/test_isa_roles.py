"""Differential audit of the operand-role table against the interpreter.

Every opcode is executed on a bare reference-interpreter core through
*recording* register files, and the observed register reads/writes are
compared with the def/use sets :mod:`repro.isa.roles` declares.  This is
the regression net behind the implicit-operand audit: the link-register
writes of BL/BLR, the flag preservation of TST, the condition-dependent
flag reads of BCC/CSET and the source-operand read of stores all have
to match the table exactly.
"""

import pytest

from repro.cpu.core import Core
from repro.cpu.engine import COND_FUNCS
from repro.isa.arch import ARMV7, ARMV8
from repro.isa.instructions import BRANCH_OPS, Cond, Instr, Op
from repro.isa.registers import FloatRegisterFile, RegisterFile
from repro.isa.roles import (
    ALL_FLAGS,
    COND_FLAG_USES,
    OPERAND_ROLES,
    flag_defs,
    flag_uses,
    fpr_defs,
    fpr_uses,
    gpr_defs,
    gpr_uses,
    roles_of,
)
from repro.memory.main_memory import AddressSpace

DATA_BASE = 0x1000


class RecordingRegs(RegisterFile):
    """Integer register file that records read/written indices."""

    def __init__(self, arch):
        super().__init__(arch)
        self.reads: set[int] = set()
        self.writes: set[int] = set()

    def read(self, index):
        self.reads.add(index)
        return super().read(index)

    def read_signed(self, index):
        self.reads.add(index)
        return super().read_signed(index)

    def write(self, index, value):
        self.writes.add(index)
        super().write(index, value)

    def clear(self):
        self.reads.clear()
        self.writes.clear()


class RecordingFregs(FloatRegisterFile):
    """FP register file that records read/written indices."""

    def __init__(self, arch):
        super().__init__(arch)
        self.reads: set[int] = set()
        self.writes: set[int] = set()

    def read_bits(self, index):
        self.reads.add(index)
        return super().read_bits(index)

    def write_bits(self, index, bits):
        self.writes.add(index)
        super().write_bits(index, bits)

    def clear(self):
        self.reads.clear()
        self.writes.clear()


def recording_core(arch):
    core = Core(0, arch, caches=None, model_caches=False, use_engine=False)
    core.regs = RecordingRegs(arch)
    core.fregs = RecordingFregs(arch)
    space = AddressSpace("bare")
    space.map("data", DATA_BASE, 0x1000)
    core.mem = space
    core.text_base = 0
    return core


def representative(op: Op, arch) -> Instr:
    """A concrete instruction of the given opcode with distinct operands."""
    if op in (
        Op.ADD, Op.SUB, Op.RSB, Op.MUL, Op.MULHU, Op.UDIV, Op.SDIV,
        Op.AND, Op.ORR, Op.EOR, Op.BIC, Op.LSL, Op.LSR, Op.ASR,
    ):
        return Instr(op, rd=5, rn=6, rm=7)
    if op in (Op.MOVI,):
        return Instr(op, rd=5, imm=42)
    if op in (Op.MOV, Op.MVN):
        return Instr(op, rd=5, rn=6)
    if op in (Op.ADDI, Op.SUBI, Op.ANDI, Op.ORRI, Op.EORI, Op.LSLI, Op.LSRI, Op.ASRI, Op.MULI):
        return Instr(op, rd=5, rn=6, imm=3)
    if op in (Op.CMP, Op.TST):
        return Instr(op, rn=6, rm=7)
    if op == Op.CMPI:
        return Instr(op, rn=6, imm=3)
    if op == Op.CSET:
        return Instr(op, rd=5, cond=Cond.NE)
    if op in (Op.LDR, Op.LDRB):
        return Instr(op, rd=5, rn=6, imm=8)
    if op in (Op.STR, Op.STRB):
        return Instr(op, rd=5, rn=6, imm=8)
    if op == Op.B:
        return Instr(op, imm=0)
    if op == Op.BCC:
        return Instr(op, imm=0, cond=Cond.NE)
    if op in (Op.CBZ, Op.CBNZ):
        return Instr(op, rn=6, imm=0)
    if op == Op.BL:
        return Instr(op, imm=0)
    if op == Op.BLR:
        return Instr(op, rn=6)
    if op in (Op.RET, Op.NOP, Op.HALT, Op.WFI):
        return Instr(op)
    if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX):
        return Instr(op, rd=2, rn=3, rm=4)
    if op in (Op.FSQRT, Op.FNEG, Op.FABS, Op.FMOV):
        return Instr(op, rd=2, rn=3)
    if op == Op.FCMP:
        return Instr(op, rn=3, rm=4)
    if op == Op.FMOVI:
        return Instr(op, rd=2, imm=0x3FF0000000000000)
    if op in (Op.FLDR, Op.FSTR):
        return Instr(op, rd=2, rn=6, imm=8)
    if op in (Op.SCVTF, Op.FMOVRG):
        return Instr(op, rd=2, rn=6)
    if op in (Op.FCVTZS, Op.FMOVGR):
        return Instr(op, rd=5, rn=3)
    if op == Op.SVC:
        return Instr(op, imm=1)
    raise AssertionError(f"no representative instruction for {op!r}")


def execute(core, instr):
    """Run one instruction on the recording core; returns the records."""
    # Seed registers with safe, nonzero values: base registers point at
    # the mapped data segment, everything else gets a small integer so
    # divides and shifts behave.
    for index in range(core.arch.num_gpr):
        core.regs.write(index, DATA_BASE if index in (6, 7) else index + 1)
    core.regs.write(7, 2)  # index register / divisor
    for index in range(core.arch.num_fpr):
        core.fregs.write_bits(index, 0x3FF0000000000000 + index)
    core.pc = 0
    core.halted = False
    core.text = [instr]
    core.regs.clear()
    core.fregs.clear()
    core.step()
    return core.regs.reads, core.regs.writes, core.fregs.reads, core.fregs.writes


def all_testable_ops():
    # SVC needs a kernel; its roles are an interface contract with the
    # syscall layer, asserted structurally below.
    return [op for op in Op if op != Op.SVC]


def test_role_table_covers_every_opcode():
    assert set(OPERAND_ROLES) == set(Op)


@pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=lambda a: a.name)
@pytest.mark.parametrize("op", all_testable_ops(), ids=lambda op: op.name)
def test_defs_uses_match_interpreter(arch, op):
    if roles_of(op).fpr_defs or roles_of(op).fpr_uses:
        if arch.num_fpr == 0:
            pytest.skip("no FP register file on this architecture")
    core = recording_core(arch)
    instr = representative(op, arch)
    reads, writes, freads, fwrites = execute(core, instr)
    abi = arch.abi
    assert writes == gpr_defs(instr, abi), f"{op.name}: GPR defs mismatch"
    assert reads == gpr_uses(instr, abi), f"{op.name}: GPR uses mismatch"
    assert fwrites == fpr_defs(instr, abi), f"{op.name}: FPR defs mismatch"
    assert freads == fpr_uses(instr, abi), f"{op.name}: FPR uses mismatch"


@pytest.mark.parametrize("op", all_testable_ops(), ids=lambda op: op.name)
def test_flag_defs_match_interpreter(op):
    """Flags outside ``flag_defs`` must be preserved bit-exactly.

    Two runs differing only in the initial flag state: a *defined* flag
    ends identical in both (its value is computed from the operands); a
    *preserved* flag tracks the initial state and ends different.
    """
    arch = ARMV8
    instr = representative(op, arch)
    finals = []
    for initial in (False, True):
        core = recording_core(arch)
        core.flag_n = core.flag_z = core.flag_c = core.flag_v = initial
        if op in (Op.BCC, Op.CSET):
            instr = Instr(op, rd=5, imm=0, cond=Cond.AL)  # flag-independent path
        execute(core, instr)
        finals.append(
            {"N": core.flag_n, "Z": core.flag_z, "C": core.flag_c, "V": core.flag_v}
        )
    declared = flag_defs(instr)
    for flag in ALL_FLAGS:
        if flag in declared:
            assert finals[0][flag] == finals[1][flag], (
                f"{op.name}: declared def of {flag} but value depends on prior state"
            )
        else:
            # preserved: final == initial in both runs
            assert finals[0][flag] is False and finals[1][flag] is True, (
                f"{op.name}: flag {flag} modified but not declared as a def"
            )


def test_tst_preserves_carry_and_overflow():
    """Regression: TST defines N/Z only; C/V stay live across it."""
    core = recording_core(ARMV8)
    core.flag_c, core.flag_v = True, True
    execute(core, Instr(Op.TST, rn=6, rm=7))
    assert (core.flag_c, core.flag_v) == (True, True)
    assert flag_defs(Instr(Op.TST, rn=6, rm=7)) == frozenset("NZ")
    assert flag_uses(Instr(Op.TST, rn=6, rm=7)) == frozenset("CV")


@pytest.mark.parametrize("cond", list(Cond), ids=lambda c: c.name)
def test_cond_flag_uses_match_cond_funcs(cond):
    """COND_FLAG_USES must be exact: flags outside the set never change
    the condition's outcome; each flag inside flips it for some state."""
    core = recording_core(ARMV8)

    def outcome(state: int) -> bool:
        core.flag_n = bool(state & 8)
        core.flag_z = bool(state & 4)
        core.flag_c = bool(state & 2)
        core.flag_v = bool(state & 1)
        return COND_FUNCS[cond](core)

    used = COND_FLAG_USES[cond]
    bit_of = {"N": 8, "Z": 4, "C": 2, "V": 1}
    for flag, bit in bit_of.items():
        flips = [outcome(state) != outcome(state ^ bit) for state in range(16)]
        if flag in used:
            assert any(flips), f"{cond.name}: declared use of {flag} never matters"
        else:
            assert not any(flips), f"{cond.name}: undeclared use of {flag}"


def test_link_register_roles():
    """BL defines lr; BLR reads rn before defining lr; RET reads lr."""
    for arch in (ARMV7, ARMV8):
        abi = arch.abi
        assert gpr_defs(Instr(Op.BL, imm=0), abi) == {abi.lr}
        assert gpr_defs(Instr(Op.BLR, rn=6), abi) == {abi.lr}
        assert gpr_uses(Instr(Op.BLR, rn=6), abi) == {6}
        assert gpr_uses(Instr(Op.RET), abi) == {abi.lr}

        # blr lr: the target must be the *old* link register value.
        core = recording_core(arch)
        core.pc = 0
        core.text = [Instr(Op.BLR, rn=abi.lr)]
        core.regs.write(abi.lr, 0x80)
        core.step()
        assert core.pc == 0x80
        assert core.regs.read(abi.lr) == 4  # return address of the call


def test_svc_roles_are_the_kernel_interface():
    for arch in (ARMV7, ARMV8):
        abi = arch.abi
        instr = Instr(Op.SVC, imm=1)
        assert gpr_uses(instr, abi) == set(abi.arg_regs)
        assert gpr_defs(instr, abi) == {abi.ret_reg}


def test_branch_ops_classified():
    for op in BRANCH_OPS:
        roles = roles_of(op)
        assert roles.is_call == (op in (Op.BL, Op.BLR))
        assert roles.is_return == (op == Op.RET)
    assert not roles_of(Op.SVC).is_call
