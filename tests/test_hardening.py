"""Tests of the software-hardening subsystem.

Covers the scheme registry, the AST transforms (semantics preservation,
determinism, instrumentation shape), the Detected outcome end to end
through the injector, the scenario-axis plumbing (ids, serialisation,
sweeps, store/resume) and the hardening analysis table — including the
acceptance campaign: a seeded sweep over 2 ISAs x 3 programming models
x {off, dwc, dwc+cfc} through ``run_suite`` with store and resume.
"""

import pytest

from repro.analysis.hardening_table import (
    hardening_matrix,
    hardening_rows,
    render_hardening_table,
)
from repro.compiler import ast
from repro.compiler.ast import Function, Module, Return, assign, call, store, var
from repro.compiler.linker import link
from repro.errors import CompileError
from repro.hardening import (
    CFC_SIG_VAR,
    FT_TRAP,
    HARDENING_SCHEMES,
    build_ft_module,
    dwc_top_n,
    harden_module,
    hardening_label,
    normalize_hardening,
    scheme_components,
    shadow_name,
)
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport
from repro.injection.classify import NOT_INJECTED, Outcome, classify_run, detection_rate
from repro.injection.fault import FaultModel
from repro.injection.golden import GoldenRunner
from repro.injection.injector import FaultInjector
from repro.isa.arch import ARMV7, ARMV8
from repro.npb.suite import Scenario, ScenarioSuite, build_program, instruction_budget
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import ResultsDatabase, campaign_fingerprint
from repro.runtime import runtime_modules
from repro.soc.multicore import build_system

SEED = 2018


# ---------------------------------------------------------------------------
# scheme registry
# ---------------------------------------------------------------------------


class TestSchemes:
    def test_normalization(self):
        assert normalize_hardening(None) is None
        assert normalize_hardening("off") is None
        assert normalize_hardening("none") is None
        assert normalize_hardening("") is None
        assert normalize_hardening("dwc") == "dwc"
        assert normalize_hardening("CFC") == "cfc"
        assert normalize_hardening("cfc+dwc") == "dwc+cfc"
        assert normalize_hardening("dwc+cfc") == "dwc+cfc"

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown hardening component"):
            normalize_hardening("tmr")
        with pytest.raises(ValueError):
            normalize_hardening("dwc+sihft")

    def test_components_and_labels(self):
        assert scheme_components(None) == frozenset()
        assert scheme_components("dwc+cfc") == {"dwc", "cfc"}
        assert hardening_label(None) == "off"
        assert hardening_label("cfc+dwc") == "dwc+cfc"
        assert set(HARDENING_SCHEMES) == {"off", "dwc", "cfc", "dwc+cfc"}


# ---------------------------------------------------------------------------
# the transforms
# ---------------------------------------------------------------------------


def _toy_module() -> Module:
    main = Function(
        name="main",
        params=[("rank", ast.INT)],
        locals=[("i", ast.INT), ("acc", ast.INT), ("x", ast.INT)],
        body=[
            assign("acc", ast.const(0)),
            ast.For(
                "i",
                ast.const(0),
                ast.const(12),
                [
                    assign("x", ast.mul(var("i"), var("i"))),
                    ast.If(
                        ast.gt(var("x"), ast.const(30)),
                        [assign("acc", ast.add(var("acc"), var("x")))],
                        [assign("acc", ast.sub(var("acc"), ast.const(1)))],
                    ),
                    store("g", var("i"), var("x")),
                ],
            ),
            ast.ExprStmt(call("print_int", var("acc"), type=ast.VOID)),
            Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    return Module("toy", [main], [ast.GlobalVar("g", ast.INT, 16)])


def _run_program(program, arch, cores=1):
    system = build_system(arch.name, cores=cores)
    system.load_process(program, name="t")
    system.run(max_instructions=5_000_000)
    process = system.kernel.processes[0]
    assert process.state.value == "exited", system.kernel.process_summary()
    return process.output_text()


class TestTransform:
    def test_off_is_identity(self):
        module = _toy_module()
        assert harden_module(module, None) is module
        assert harden_module(module, "off") is module

    def test_dwc_adds_shadow_locals_and_trap_calls(self):
        hardened = harden_module(_toy_module(), "dwc")
        main = hardened.function("main")
        local_names = [name for name, _ in main.locals]
        assert shadow_name("i") in local_names
        assert shadow_name("acc") in local_names
        assert shadow_name("rank") in local_names  # params get shadows too
        text = repr(main.body)
        assert FT_TRAP in text

    def test_cfc_adds_signature_variable(self):
        hardened = harden_module(_toy_module(), "cfc")
        main = hardened.function("main")
        assert CFC_SIG_VAR in [name for name, _ in main.locals]
        assert FT_TRAP in repr(main.body)

    def test_instrumentation_name_collision_rejected(self):
        bad = Module(
            "bad",
            [Function(name="main", params=[], locals=[("x__ftdup", ast.INT)], body=[Return(ast.const(0))], return_type=ast.INT)],
        )
        with pytest.raises(CompileError, match="collides with hardening"):
            harden_module(bad, "dwc")

    @pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
    @pytest.mark.parametrize("scheme", ["dwc", "cfc", "dwc+cfc"])
    def test_semantics_preserved_and_static_overhead(self, arch, scheme):
        module = _toy_module()
        baseline = link([module] + runtime_modules(arch), arch, name="t")
        hardened = link([module] + runtime_modules(arch), arch, name="t", hardening=scheme)
        assert _run_program(hardened, arch) == _run_program(baseline, arch)
        assert len(hardened.instructions) > len(baseline.instructions)

    def test_transform_is_deterministic_and_composes_with_optimizer(self):
        from repro.compiler.optimizer import optimize_module

        module = _toy_module()
        once = harden_module(optimize_module(module), "dwc+cfc")
        twice = harden_module(optimize_module(module), "dwc+cfc")
        assert repr(once.functions) == repr(twice.functions)
        # and the full pipeline produces identical code both times
        a = link([_toy_module()] + runtime_modules(ARMV8), ARMV8, name="t", hardening="dwc+cfc")
        b = link([_toy_module()] + runtime_modules(ARMV8), ARMV8, name="t", hardening="dwc+cfc")
        assert [repr(i) for i in a.instructions] == [repr(i) for i in b.instructions]

    def test_for_with_continue_uses_resync_fallback(self):
        # continue binds to the for loop, so the lowering to while (which
        # would skip the increment) must not be applied; the loop still
        # runs to completion and produces the right sum.
        main = Function(
            name="main",
            params=[("rank", ast.INT)],
            locals=[("i", ast.INT), ("acc", ast.INT)],
            body=[
                assign("acc", ast.const(0)),
                ast.For(
                    "i",
                    ast.const(0),
                    ast.const(10),
                    [
                        ast.If(
                            ast.eq(ast.mod(var("i"), ast.const(2)), ast.const(0)),
                            [ast.Continue()],
                        ),
                        assign("acc", ast.add(var("acc"), var("i"))),
                    ],
                ),
                ast.ExprStmt(call("print_int", var("acc"), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("t", [main])
        for scheme in ("dwc", "cfc", "dwc+cfc"):
            hardened = link([module], ARMV8, name="t", hardening=scheme)
            assert _run_program(hardened, ARMV8).split() == ["25"]

    def test_break_restores_the_loop_signature(self):
        main = Function(
            name="main",
            params=[("rank", ast.INT)],
            locals=[("i", ast.INT)],
            body=[
                assign("i", ast.const(0)),
                ast.While(
                    ast.lt(var("i"), ast.const(100)),
                    [
                        ast.If(ast.ge(var("i"), ast.const(7)), [ast.Break()]),
                        assign("i", ast.add(var("i"), ast.const(1))),
                    ],
                ),
                ast.ExprStmt(call("print_int", var("i"), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("t", [main])
        hardened = link([module], ARMV8, name="t", hardening="dwc+cfc")
        assert _run_program(hardened, ARMV8).split() == ["7"]

    def test_ft_module_linked_automatically_only_when_hardening(self):
        module = _toy_module()
        baseline = link([module], ARMV8, name="t")
        hardened = link([module], ARMV8, name="t", hardening="dwc")
        assert FT_TRAP not in baseline.labels
        assert FT_TRAP in hardened.labels

    def test_ft_trap_kills_with_distinct_fault_kind(self):
        main = Function(
            name="main",
            params=[("rank", ast.INT)],
            body=[ast.ExprStmt(call(FT_TRAP, type=ast.VOID)), Return(ast.const(0))],
            return_type=ast.INT,
        )
        program = link([Module("t", [main]), build_ft_module()], ARMV8, name="t")
        system = build_system("armv8", cores=1)
        system.load_process(program, name="t")
        system.run(max_instructions=100_000)
        process = system.kernel.processes[0]
        assert process.state.value == "killed"
        assert process.fault_kind == "ft_detected"


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


class TestDetectedOutcome:
    def test_detected_dominates_everything(self):
        result = classify_run(
            any_process_killed=True,
            all_exited_zero=False,
            watchdog_expired=True,
            deadlocked=True,
            output_matches=False,
            memory_matches=False,
            state_matches=False,
            fault_detected=True,
        )
        assert result.outcome == Outcome.DETECTED

    def test_detected_not_folded_into_ut(self):
        # a killed process without the trap stays UT
        result = classify_run(
            any_process_killed=True,
            all_exited_zero=False,
            watchdog_expired=False,
            deadlocked=False,
            output_matches=True,
            memory_matches=True,
            state_matches=True,
        )
        assert result.outcome == Outcome.UT

    def test_detection_rate(self):
        counts = {"Vanished": 40, "Detected": 10, "OMM": 0, NOT_INJECTED: 50}
        assert detection_rate(counts) == pytest.approx(20.0)
        assert detection_rate({}) == 0.0


# ---------------------------------------------------------------------------
# the scenario axis
# ---------------------------------------------------------------------------


class TestHardeningAxis:
    def test_scenario_id_tags_the_scheme(self):
        scenario = Scenario("IS", "serial", 1, "armv8").with_hardening("cfc+dwc")
        assert scenario.hardening == "dwc+cfc"
        assert scenario.scenario_id == "IS-SER-1-armv8-dwc+cfc"
        assert scenario.describe()["hardening"] == "dwc+cfc"
        base = Scenario("IS", "serial", 1, "armv8")
        assert base.scenario_id == "IS-SER-1-armv8"
        assert base.hardening_label == "off"

    def test_mix_and_hardening_tags_compose(self):
        scenario = (
            Scenario("IS", "serial", 1, "armv8")
            .with_target_mix({"gpr": 0.6, "memory": 0.4})
            .with_hardening("dwc")
        )
        assert scenario.scenario_id == "IS-SER-1-armv8-gpr0.6+memory0.4-dwc"

    def test_as_dict_roundtrip(self):
        scenario = Scenario("LU", "omp", 2, "armv7").with_hardening("dwc")
        assert Scenario.from_dict(scenario.as_dict()) == scenario
        # payloads from before the axis existed deserialise unhardened
        legacy = {"app": "LU", "mode": "omp", "cores": 2, "isa": "armv7", "target_mix": None}
        assert Scenario.from_dict(legacy).hardening is None

    def test_direct_construction_normalizes_the_label(self):
        # a directly built scenario must share ids (and store shards)
        # with swept/deserialised ones no matter how the label is spelt
        scenario = Scenario("LU", "serial", 1, "armv8", hardening="cfc+dwc")
        assert scenario.hardening == "dwc+cfc"
        assert scenario.scenario_id == "LU-SER-1-armv8-dwc+cfc"
        assert Scenario("LU", "serial", 1, "armv8", hardening="off").hardening is None

    def test_sweep_dedupes_equivalent_schemes(self):
        suite = ScenarioSuite([Scenario("IS", "serial", 1, "armv8")])
        swept = suite.sweep_hardenings(["off", "dwc", None, "cfc+dwc", "dwc+cfc"])
        assert [s.hardening for s in swept] == [None, "dwc", "dwc+cfc"]
        assert len({s.scenario_id for s in swept}) == len(swept)

    def test_suite_sweep_and_filter(self):
        suite = ScenarioSuite([Scenario("IS", "serial", 1, "armv8"), Scenario("IS", "omp", 2, "armv8")])
        swept = suite.sweep_hardenings([None, "dwc", "dwc+cfc"])
        assert len(swept) == 6
        assert len({s.scenario_id for s in swept}) == 6
        only_dwc = swept.filter(hardenings=["dwc"])
        assert len(only_dwc) == 2 and all(s.hardening == "dwc" for s in only_dwc)
        off = swept.filter(hardenings=["off"])
        assert len(off) == 2 and all(s.hardening is None for s in off)

    def test_report_record_roundtrip(self, golden_hardened):
        report = _small_report(golden_hardened)
        record = report.as_record()
        assert record["hardening"] == "dwc+cfc"
        rebuilt = ScenarioReport.from_record(record)
        assert rebuilt.scenario == report.scenario
        assert rebuilt.counts == report.counts
        payload = report.to_payload()
        assert ScenarioReport.from_payload(payload).scenario == report.scenario

    def test_build_program_cached_per_scheme(self):
        base = build_program("IS", "serial", "armv8")
        hardened = build_program("IS", "serial", "armv8", "dwc")
        assert base is build_program("IS", "serial", "armv8")
        assert hardened is build_program("IS", "serial", "armv8", "dwc")
        assert hardened is not base
        assert len(hardened.instructions) > len(base.instructions)
        # equivalent labels share one cache entry (no redundant links)
        assert base is build_program("IS", "serial", "armv8", "off")
        assert base is build_program("IS", "serial", "armv8", None)
        assert build_program("IS", "serial", "armv8", "cfc+dwc") is build_program(
            "IS", "serial", "armv8", "dwc+cfc"
        )


# ---------------------------------------------------------------------------
# injector integration: budgets, accounting, detection
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_base():
    scenario = Scenario("LU", "serial", 1, "armv8")
    return GoldenRunner(model_caches=False, checkpoint_interval=None).run(
        scenario, collect_stats=False
    )


@pytest.fixture(scope="module")
def golden_hardened():
    scenario = Scenario("LU", "serial", 1, "armv8").with_hardening("dwc+cfc")
    return GoldenRunner(model_caches=False, checkpoint_interval=None).run(
        scenario, collect_stats=False
    )


def _small_report(golden) -> ScenarioReport:
    from repro.injection.campaign import summarize

    faults = FaultModel("armv8", cores=1, seed=SEED).generate(golden.total_instructions, 4)
    injector = FaultInjector(golden.scenario, golden)
    return summarize(golden.scenario, golden, injector.run_many(faults), 0.0)


class TestHardenedInjection:
    def test_watchdog_budget_uses_the_hardened_golden_length(self, golden_base, golden_hardened):
        # The hardened golden run is longer; the injector's budget must
        # scale with *it*, not with the unhardened twin.
        assert golden_hardened.total_instructions > golden_base.total_instructions
        assert golden_hardened.watchdog_budget(4) == max(
            50_000, 4 * golden_hardened.total_instructions
        )
        assert golden_hardened.watchdog_budget(4) > golden_base.watchdog_budget(4)
        # the static (pre-golden) budget scales with the scheme as well
        base, hard = golden_base.scenario, golden_hardened.scenario
        assert instruction_budget(hard) > instruction_budget(base)
        assert instruction_budget(hard, golden_hardened.total_instructions) == max(
            50_000, 4 * golden_hardened.total_instructions
        )

    def test_campaign_draws_faults_over_the_hardened_lifespan(self, golden_hardened):
        campaign = ScenarioCampaign(
            golden_hardened.scenario, CampaignConfig(faults_per_scenario=64, seed=SEED)
        )
        campaign.golden = golden_hardened
        faults = campaign.build_fault_list()
        assert max(f.injection_time for f in faults) < golden_hardened.total_instructions

    def test_detection_and_accounting(self, golden_base, golden_hardened):
        """The acceptance comparison: identical fault list, strictly
        lower OMM share plus nonzero Detected on the hardened binary."""
        faults = FaultModel("armv8", cores=1, seed=SEED).generate(
            golden_base.total_instructions, 120
        )
        base_results = FaultInjector(golden_base.scenario, golden_base).run_many(faults)
        hard_results = FaultInjector(golden_hardened.scenario, golden_hardened).run_many(faults)

        def shares(results):
            injected = [r for r in results if r.outcome != NOT_INJECTED]
            counts = {}
            for r in injected:
                counts[r.outcome] = counts.get(r.outcome, 0) + 1
            return counts, len(injected)

        base_counts, base_injected = shares(base_results)
        hard_counts, hard_injected = shares(hard_results)
        assert base_counts.get("Detected", 0) == 0
        assert hard_counts.get("Detected", 0) > 0
        assert (
            hard_counts.get("OMM", 0) / hard_injected
            < base_counts.get("OMM", 0) / base_injected
        )
        # Detected runs were injected: the accounting counts them as
        # applied faults, never as NotInjected.
        detected = [r for r in hard_results if r.outcome == "Detected"]
        assert detected and all(r.executed_instructions > 0 for r in detected)
        from repro.injection.campaign import summarize

        report = summarize(golden_hardened.scenario, golden_hardened, hard_results, 0.0)
        assert report.faults_injected == len(hard_results) - report.counts.get(NOT_INJECTED, 0)
        assert report.counts.get("Detected", 0) == len(detected)
        assert report.percentages.get("Detected", 0.0) > 0.0

    def test_not_injected_still_reported_for_late_faults(self, golden_base):
        # A fault scheduled past the end of the run is never applied and
        # must surface as NotInjected (same contract as unhardened runs).
        from repro.injection.fault import FaultDescriptor, TARGET_GPR

        hardened = golden_base.scenario.with_hardening("dwc")
        golden_hard = GoldenRunner(model_caches=False).run(hardened, collect_stats=False)
        late = FaultDescriptor(
            fault_id=0,
            injection_time=golden_hard.total_instructions + 10,
            core_id=0,
            target_kind=TARGET_GPR,
            register_index=2,
            bit=1,
        )
        result = FaultInjector(hardened, golden_hard).run_one(late)
        assert result.outcome == NOT_INJECTED


# ---------------------------------------------------------------------------
# the acceptance campaign: sweep through run_suite with store/resume
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def swept_campaign(tmp_path_factory):
    suite = ScenarioSuite(
        [
            Scenario("IS", "serial", 1, isa)
            for isa in ("armv7", "armv8")
        ]
        + [Scenario("IS", "omp", 2, isa) for isa in ("armv7", "armv8")]
        + [Scenario("IS", "mpi", 2, isa) for isa in ("armv7", "armv8")]
    ).sweep_hardenings([None, "dwc", "dwc+cfc"])
    store_dir = tmp_path_factory.mktemp("hardening-store")
    config = CampaignConfig(faults_per_scenario=8, seed=SEED)
    runner = CampaignRunner(config, workers=0)
    database = runner.run_suite(suite, store=CampaignStore(store_dir), resume=False)
    return suite, store_dir, config, database


class TestSweptCampaign:
    def test_full_matrix_completes(self, swept_campaign):
        suite, _store, _config, database = swept_campaign
        assert len(suite) == 18  # 2 ISAs x 3 models x 3 schemes
        assert len(database) == 18
        assert not database.failures
        schemes = {report.scenario.hardening_label for report in database.reports.values()}
        assert schemes == {"off", "dwc", "dwc+cfc"}

    def test_hardened_scenarios_detect_faults(self, swept_campaign):
        _suite, _store, _config, database = swept_campaign
        detected = sum(
            report.counts.get("Detected", 0)
            for report in database.reports.values()
            if report.scenario.hardening == "dwc+cfc"
        )
        assert detected > 0
        unhardened_detected = sum(
            report.counts.get("Detected", 0)
            for report in database.reports.values()
            if report.scenario.hardening is None
        )
        assert unhardened_detected == 0

    def test_store_resume_is_bit_identical(self, swept_campaign):
        suite, store_dir, config, database = swept_campaign
        resumed = CampaignRunner(config, workers=0).run_suite(
            suite, store=CampaignStore(store_dir), resume=True
        )
        assert campaign_fingerprint(resumed) == campaign_fingerprint(database)

    def test_hardening_table_renders(self, swept_campaign):
        _suite, _store, _config, database = swept_campaign
        rows = hardening_rows(database)
        assert {row["hardening"] for row in rows} == {"off", "dwc", "dwc+cfc"}
        for row in rows:
            if row["hardening"] == "off":
                assert row["static_overhead_x"] == "-"
            else:
                assert row["static_overhead_x"] > 1.0
                assert row["dynamic_overhead_x"] > 1.0
        matrix = hardening_matrix(database)
        assert all("dwc+cfc_detected_pct" in row for row in matrix)
        rendered = render_hardening_table(database)
        assert "Software-hardening dimension" in rendered
        assert "dwc+cfc" in rendered

    def test_table_survives_database_roundtrip(self, swept_campaign, tmp_path):
        _suite, _store, _config, database = swept_campaign
        path = database.save_json(tmp_path / "db.json")
        reloaded = ResultsDatabase.load(path)
        assert hardening_rows(reloaded) == hardening_rows(database)


# ---------------------------------------------------------------------------
# selective DWC: top-N shadowing steered by the static analysis
# ---------------------------------------------------------------------------


class TestSelectiveDwcScheme:
    def test_dwc_top_n_grammar(self):
        assert normalize_hardening("dwc4") == "dwc4"
        assert normalize_hardening("cfc+dwc4") == "dwc4+cfc"
        assert dwc_top_n("dwc4") == 4
        assert dwc_top_n("dwc12+cfc") == 12
        assert dwc_top_n("dwc") is None
        assert dwc_top_n("cfc") is None
        assert dwc_top_n(None) is None
        assert scheme_components("dwc4+cfc") == {"dwc", "cfc"}

    def test_conflicting_dwc_variants_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            normalize_hardening("dwc+dwc4")
        with pytest.raises(ValueError, match="conflicting"):
            normalize_hardening("dwc2+dwc3")
        with pytest.raises(ValueError):
            normalize_hardening("dwc0")  # zero-variable selection is meaningless

    def test_selective_without_ranks_is_an_error(self):
        with pytest.raises(CompileError, match="ranks"):
            harden_module(_toy_module(), "dwc2")

    @pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
    def test_selective_semantics_and_reduced_overhead(self, arch):
        from repro.staticlint import analyze_liveness, top_variables, variable_ranks

        module = _toy_module()
        baseline = link([module] + runtime_modules(arch), arch, name="t")
        full = link([module] + runtime_modules(arch), arch, name="t", hardening="dwc")
        ranks = variable_ranks(baseline, analyze_liveness(baseline))
        shadow_ranks = top_variables(ranks, 1)
        selective = link(
            [module] + runtime_modules(arch),
            arch,
            name="t",
            hardening="dwc1",
            shadow_ranks=shadow_ranks,
        )
        # same observable behaviour, strictly less instrumentation than
        # full duplication, strictly more than no hardening at all
        assert _run_program(selective, arch) == _run_program(baseline, arch)
        assert len(baseline.instructions) < len(selective.instructions)
        assert len(selective.instructions) < len(full.instructions)

    def test_build_program_ranks_automatically(self):
        baseline = build_program("IS", "serial", "armv8", None)
        full = build_program("IS", "serial", "armv8", "dwc")
        selective = build_program("IS", "serial", "armv8", "dwc2")
        assert len(baseline.instructions) < len(selective.instructions)
        assert len(selective.instructions) < len(full.instructions)
        composed = build_program("IS", "serial", "armv8", "dwc2+cfc")
        assert len(composed.instructions) > len(selective.instructions)


@pytest.fixture(scope="module")
def selective_campaign(tmp_path_factory):
    """Coverage-vs-overhead sweep: off vs full DWC vs top-2 selective DWC."""
    suite = ScenarioSuite([Scenario("IS", "serial", 1, "armv8")]).sweep_hardenings(
        [None, "dwc", "dwc2"]
    )
    store_dir = tmp_path_factory.mktemp("selective-store")
    config = CampaignConfig(faults_per_scenario=12, seed=SEED)
    database = CampaignRunner(config, workers=0).run_suite(
        suite, store=CampaignStore(store_dir), resume=False
    )
    return database


class TestSelectiveDwcCampaign:
    def test_sweep_completes(self, selective_campaign):
        assert len(selective_campaign) == 3
        assert not selective_campaign.failures
        schemes = {r.scenario.hardening_label for r in selective_campaign.reports.values()}
        assert schemes == {"off", "dwc", "dwc2"}

    def test_coverage_vs_overhead_report(self, selective_campaign):
        rows = {row["hardening"]: row for row in hardening_rows(selective_campaign)}
        assert set(rows) == {"off", "dwc", "dwc2"}
        # selective duplication pays measurably less than full duplication
        assert 1.0 < rows["dwc2"]["static_overhead_x"] < rows["dwc"]["static_overhead_x"]
        assert 1.0 < rows["dwc2"]["dynamic_overhead_x"] < rows["dwc"]["dynamic_overhead_x"]
        rendered = render_hardening_table(selective_campaign)
        assert "dwc2" in rendered
