"""Tests of the determinism lint (scripts/lint_determinism.py).

The lint is a CI gate, so both directions matter: the shipped tree must
be clean, and the checks must actually fire on known hazards.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "scripts" / "lint_determinism.py"

sys.path.insert(0, str(REPO / "scripts"))
from lint_determinism import lint_file  # noqa: E402


def findings_for(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return [f.check for f in lint_file(path, tmp_path)]


class TestChecks:
    def test_unseeded_random_call(self, tmp_path):
        checks = findings_for(
            tmp_path, "injection/foo.py", "import random\nx = random.randint(0, 3)\n"
        )
        assert "unseeded-random" in checks

    def test_unseeded_random_import(self, tmp_path):
        checks = findings_for(tmp_path, "analysis/foo.py", "from random import choice\n")
        assert "unseeded-random" in checks

    def test_seeded_random_is_fine(self, tmp_path):
        checks = findings_for(
            tmp_path,
            "injection/foo.py",
            "import random\nrng = random.Random(7)\nx = rng.randint(0, 3)\n",
        )
        assert checks == []

    def test_wall_clock_outside_whitelist(self, tmp_path):
        checks = findings_for(tmp_path, "injection/foo.py", "import time\nt = time.time()\n")
        assert "wall-clock" in checks

    def test_wall_clock_whitelisted_module(self, tmp_path):
        checks = findings_for(
            tmp_path, "orchestration/store.py", "import time\nt = time.time()\n"
        )
        assert checks == []

    def test_perf_counter_is_always_fine(self, tmp_path):
        checks = findings_for(
            tmp_path, "injection/foo.py", "import time\nt = time.perf_counter()\n"
        )
        assert checks == []

    def test_set_iteration_in_fingerprinted_path(self, tmp_path):
        source = "a = {1}\nb = {2}\nout = [x for x in set(a) | set(b)]\n"
        checks = findings_for(tmp_path, "injection/foo.py", source)
        assert "unordered-set-iteration" in checks

    def test_sorted_set_iteration_is_fine(self, tmp_path):
        source = "a = {1}\nout = [x for x in sorted(set(a))]\n"
        assert findings_for(tmp_path, "injection/foo.py", source) == []

    def test_set_iteration_outside_fingerprinted_path_is_fine(self, tmp_path):
        source = "out = [x for x in {1, 2, 3}]\n"
        assert findings_for(tmp_path, "analysis/foo.py", source) == []


class TestCommandLine:
    def test_shipped_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(LINT)],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_exit_code_on_finding(self, tmp_path):
        bad = tmp_path / "injection"
        bad.mkdir()
        (bad / "bad.py").write_text("import random\nx = random.random()\n")
        result = subprocess.run(
            [sys.executable, str(LINT), "--root", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "unseeded-random" in result.stdout

    def test_missing_root_is_an_error(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(LINT), "--root", str(tmp_path / "nope")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2
