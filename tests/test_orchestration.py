"""Tests of campaign orchestration: jobs, runner, results database."""

import json
import multiprocessing
import pickle
import sys
from pathlib import Path

import pytest

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig
from repro.injection.fault import FaultModel
from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import JobBatcher
from repro.orchestration.runner import (
    CampaignRunner,
    _init_worker,
    execute_job,
    pool_context,
    resolve_golden,
)


@pytest.fixture(scope="module")
def golden():
    return GoldenRunner(model_caches=False).run(Scenario("IS", "serial", 1, "armv8"), collect_stats=False)


class TestJobBatcher:
    def test_batch_sizes(self, golden):
        faults = FaultModel("armv8", 1, seed=1).generate(golden.total_instructions, 25)
        jobs = JobBatcher(faults_per_job=10).batch(golden.scenario, golden, faults)
        assert [len(job) for job in jobs] == [10, 10, 5]
        assert [job.job_id for job in jobs] == [0, 1, 2]
        assert jobs[0].describe()["scenario_id"] == golden.scenario.scenario_id

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            JobBatcher(faults_per_job=0)

    def test_execute_job_returns_results(self, golden):
        faults = FaultModel("armv8", 1, seed=2).generate(golden.total_instructions, 4)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, golden, faults)[0]
        results = execute_job(job)
        assert len(results) == 4
        assert all(r.scenario_id == golden.scenario.scenario_id for r in results)


class TestCampaignRunner:
    def test_serial_and_parallel_runs_agree(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=16, seed=42)
        serial = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(scenario)
        parallel = CampaignRunner(config, workers=4, faults_per_job=4).run_scenario(scenario)
        assert serial.counts == parallel.counts

    def test_run_suite_builds_database(self):
        config = CampaignConfig(faults_per_scenario=8, seed=1, keep_individual_results=True)
        runner = CampaignRunner(config, workers=0)
        database = runner.run_suite([Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")])
        assert len(database) == 2
        assert database.total_injections() == 16
        assert len(database.injection_records()) == 16

    def test_progress_callback_invoked(self):
        messages = []
        config = CampaignConfig(faults_per_scenario=4, seed=1)
        CampaignRunner(config, workers=0, progress=messages.append).run_scenario(Scenario("IS", "serial", 1, "armv8"))
        assert any(message.startswith("[golden]") for message in messages)
        assert any(message.startswith("[done]") for message in messages)


class TestJobPayloads:
    """Pool jobs must stay light: golden data ships once per worker."""

    #: Generous ceiling for one pickled pool job (scenario + ~16 fault
    #: descriptors); the golden reference alone is orders of magnitude
    #: bigger, so a regression reattaching it to jobs trips this fast.
    MAX_JOB_PICKLE_BYTES = 16_384

    def test_pool_jobs_are_payload_light(self, golden):
        # Campaign goldens carry checkpoints: that is what ships once per
        # worker, and what jobs must never duplicate.
        campaign_golden = GoldenRunner(model_caches=False, checkpoint_interval=None).run(
            golden.scenario, collect_stats=False
        )
        faults = FaultModel("armv8", 1, seed=3).generate(campaign_golden.total_instructions, 64)
        jobs = JobBatcher(faults_per_job=16).batch(campaign_golden.scenario, None, faults)
        golden_size = len(pickle.dumps(campaign_golden))
        for job in jobs:
            assert job.golden is None
            assert len(pickle.dumps(job)) < self.MAX_JOB_PICKLE_BYTES
        assert golden_size > 10 * self.MAX_JOB_PICKLE_BYTES

    def test_light_job_resolves_worker_shared_golden(self, golden):
        faults = FaultModel("armv8", 1, seed=4).generate(golden.total_instructions, 3)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, None, faults)[0]
        _init_worker(golden.scenario, golden)
        assert resolve_golden(job) is golden
        results = execute_job(job)
        assert len(results) == 3

    def test_unresolvable_golden_raises(self, golden):
        faults = FaultModel("armv8", 1, seed=5).generate(golden.total_instructions, 2)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, None, faults)[0]
        _init_worker(Scenario("EP", "serial", 1, "armv8"), golden)
        with pytest.raises(SimulatorError):
            resolve_golden(job)

    def test_batcher_sorts_faults_by_injection_time(self, golden):
        faults = FaultModel("armv8", 1, seed=6).generate(golden.total_instructions, 30)
        jobs = JobBatcher(faults_per_job=10).batch(golden.scenario, golden, faults)
        times = [fault.injection_time for job in jobs for fault in job.faults]
        assert times == sorted(times)
        assert sorted(f.fault_id for job in jobs for f in job.faults) == list(range(30))


class TestCampaignReproducibility:
    """Serial and pooled campaigns must agree, with and without checkpoints."""

    @pytest.mark.parametrize("checkpoint_interval", [0, 2_000], ids=["no-checkpoints", "checkpointed"])
    def test_serial_and_pooled_reports_identical(self, checkpoint_interval):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(
            faults_per_scenario=12, seed=2018, checkpoint_interval=checkpoint_interval
        )
        serial = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(scenario)
        pooled = CampaignRunner(config, workers=2, faults_per_job=4).run_scenario(scenario)
        assert serial.counts == pooled.counts
        assert serial.percentages == pooled.percentages
        assert serial.masking_rate_pct == pooled.masking_rate_pct

    def test_checkpointing_does_not_change_outcomes(self):
        scenario = Scenario("IS", "omp", 2, "armv8")
        base = dict(faults_per_scenario=10, seed=77)
        plain = CampaignRunner(
            CampaignConfig(checkpoint_interval=0, **base), workers=0
        ).run_scenario(scenario)
        checkpointed = CampaignRunner(
            CampaignConfig(checkpoint_interval=1_000, **base), workers=0
        ).run_scenario(scenario)
        assert plain.counts == checkpointed.counts
        records_plain = [(r.fault.fault_id, r.outcome, r.executed_instructions) for r in plain.results]
        records_cp = [(r.fault.fault_id, r.outcome, r.executed_instructions) for r in checkpointed.results]
        assert records_plain == records_cp


class TestPoolContext:
    def test_auto_context_available(self):
        context = pool_context()
        assert hasattr(context, "Pool")

    def test_explicit_method_honoured(self):
        context = pool_context("spawn")
        assert context.get_start_method() == "spawn"

    def test_fallback_when_fork_unavailable(self, monkeypatch):
        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method in ("fork", "forkserver"):
                raise ValueError(f"cannot find context for {method!r}")
            return real_get_context(method)

        monkeypatch.setattr("repro.orchestration.runner.multiprocessing.get_context", no_fork)
        context = pool_context()
        assert context.get_start_method() == "spawn"

    def test_campaign_runs_under_spawn(self, monkeypatch):
        # spawn workers import repro afresh: make sure the children can
        # find the package even when only conftest put src on sys.path.
        src = str(Path(__file__).resolve().parent.parent / "src")
        import os

        existing = [p for p in os.environ.get("PYTHONPATH", "").split(":") if p]
        monkeypatch.setenv("PYTHONPATH", ":".join([src] + existing))
        scenario = Scenario("EP", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=6, seed=9)
        serial = CampaignRunner(config, workers=0, faults_per_job=2).run_scenario(scenario)
        spawned = CampaignRunner(
            config, workers=2, faults_per_job=2, start_method="spawn"
        ).run_scenario(scenario)
        assert serial.counts == spawned.counts


class TestResultsDatabase:
    def test_queries(self, synthetic_database):
        assert len(synthetic_database) > 0
        assert "IS-MPI-4-armv7" in synthetic_database
        report = synthetic_database.get("IS-MPI-4-armv7")
        assert report.scenario.cores == 4
        selected = synthetic_database.select(app="IS", isa="armv7", mode="mpi")
        assert {r.scenario.cores for r in selected} == {1, 2, 4}
        totals = synthetic_database.outcome_totals()
        assert totals["Vanished"] > 0

    def test_scenario_records_flat(self, synthetic_database):
        records = synthetic_database.scenario_records()
        assert all("pct_UT" in record and "scenario_id" in record for record in records)

    def test_save_and_load_json(self, synthetic_database, tmp_path):
        path = synthetic_database.save_json(tmp_path / "campaign.json")
        payload = ResultsDatabase.load_json(path)
        assert len(payload["scenarios"]) == len(synthetic_database)
        with path.open() as handle:
            assert json.load(handle)["scenarios"]

    def test_export_csv(self, synthetic_database, tmp_path):
        path = synthetic_database.export_csv(tmp_path / "campaign.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(synthetic_database) + 1
        assert lines[0].startswith("scenario_id")

    def test_empty_database(self, tmp_path):
        database = ResultsDatabase()
        assert database.total_injections() == 0
        path = database.export_csv(tmp_path / "empty.csv")
        assert path.read_text() == ""
