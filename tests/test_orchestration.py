"""Tests of campaign orchestration: jobs, runner, results database."""

import json
import multiprocessing
import pickle
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioReport
from repro.injection.fault import FaultModel
from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario
from repro.orchestration.database import (
    DuplicateReportError,
    ResultsDatabase,
    campaign_fingerprint,
    strip_wall_times,
)
from repro.orchestration.jobs import JobBatcher
from repro.orchestration.store import (
    CampaignStore,
    LeaseHeartbeat,
    ScenarioFailure,
    ScenarioLease,
)
from repro.orchestration import runner as runner_module
from repro.orchestration.runner import (
    CampaignRunner,
    GoldenCache,
    PersistentSuitePool,
    _WORKER_CACHE,
    _execute_job_guarded,
    evict_golden,
    execute_job,
    install_golden,
    pool_context,
    resolve_golden,
)


def synthetic_report(app="IS", mode="serial", cores=1, isa="armv8", counts=None, stats=None):
    """A hand-built report (no simulation); counts fill the outcome map."""
    from repro.injection.classify import empty_outcome_counts, masking_rate, outcome_percentages

    scenario = Scenario(app=app, mode=mode, cores=cores, isa=isa)
    full_counts = empty_outcome_counts()
    full_counts.update(counts or {})
    return ScenarioReport(
        scenario=scenario,
        faults_injected=sum(full_counts.values()),
        counts=full_counts,
        percentages=outcome_percentages(full_counts),
        masking_rate_pct=masking_rate(full_counts),
        golden_summary={"scenario": scenario.scenario_id, "instructions": 10_000},
        golden_stats=stats or {},
        wall_time_seconds=0.01,
        results=[],
    )


@pytest.fixture(scope="module")
def golden():
    return GoldenRunner(model_caches=False).run(Scenario("IS", "serial", 1, "armv8"), collect_stats=False)


class TestJobBatcher:
    def test_batch_sizes(self, golden):
        faults = FaultModel("armv8", 1, seed=1).generate(golden.total_instructions, 25)
        jobs = JobBatcher(faults_per_job=10).batch(golden.scenario, golden, faults)
        assert [len(job) for job in jobs] == [10, 10, 5]
        assert [job.job_id for job in jobs] == [0, 1, 2]
        assert jobs[0].describe()["scenario_id"] == golden.scenario.scenario_id

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            JobBatcher(faults_per_job=0)

    def test_execute_job_returns_results(self, golden):
        faults = FaultModel("armv8", 1, seed=2).generate(golden.total_instructions, 4)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, golden, faults)[0]
        results = execute_job(job)
        assert len(results) == 4
        assert all(r.scenario_id == golden.scenario.scenario_id for r in results)


class TestCampaignRunner:
    def test_serial_and_parallel_runs_agree(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=16, seed=42)
        serial = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(scenario)
        parallel = CampaignRunner(config, workers=4, faults_per_job=4).run_scenario(scenario)
        assert serial.counts == parallel.counts

    def test_run_suite_builds_database(self):
        config = CampaignConfig(faults_per_scenario=8, seed=1, keep_individual_results=True)
        runner = CampaignRunner(config, workers=0)
        database = runner.run_suite([Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")])
        assert len(database) == 2
        assert database.total_injections() == 16
        assert len(database.injection_records()) == 16

    def test_progress_callback_invoked(self):
        messages = []
        config = CampaignConfig(faults_per_scenario=4, seed=1)
        CampaignRunner(config, workers=0, progress=messages.append).run_scenario(Scenario("IS", "serial", 1, "armv8"))
        assert any(message.startswith("[golden]") for message in messages)
        assert any(message.startswith("[done]") for message in messages)


class TestJobPayloads:
    """Pool jobs must stay light: golden data ships once per worker."""

    #: Generous ceiling for one pickled pool job (scenario + ~16 fault
    #: descriptors); the golden reference alone is orders of magnitude
    #: bigger, so a regression reattaching it to jobs trips this fast.
    MAX_JOB_PICKLE_BYTES = 16_384

    def test_pool_jobs_are_payload_light(self, golden):
        # Campaign goldens carry checkpoints: that is what ships once per
        # worker, and what jobs must never duplicate.
        campaign_golden = GoldenRunner(model_caches=False, checkpoint_interval=None).run(
            golden.scenario, collect_stats=False
        )
        faults = FaultModel("armv8", 1, seed=3).generate(campaign_golden.total_instructions, 64)
        jobs = JobBatcher(faults_per_job=16).batch(campaign_golden.scenario, None, faults)
        golden_size = len(pickle.dumps(campaign_golden))
        for job in jobs:
            assert job.golden is None
            assert len(pickle.dumps(job)) < self.MAX_JOB_PICKLE_BYTES
        assert golden_size > 10 * self.MAX_JOB_PICKLE_BYTES

    def test_light_job_resolves_worker_cached_golden(self, golden):
        faults = FaultModel("armv8", 1, seed=4).generate(golden.total_instructions, 3)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, None, faults)[0]
        install_golden(golden.scenario.scenario_id, golden)
        assert resolve_golden(job) is golden
        results = execute_job(job)
        assert len(results) == 3
        evict_golden(golden.scenario.scenario_id)

    def test_unresolvable_golden_raises(self, golden):
        faults = FaultModel("armv8", 1, seed=5).generate(golden.total_instructions, 2)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, None, faults)[0]
        evict_golden(golden.scenario.scenario_id)
        install_golden("EP-SER-1-armv8", golden)
        with pytest.raises(SimulatorError):
            resolve_golden(job)
        evict_golden("EP-SER-1-armv8")

    def test_job_resolves_golden_from_spool_file(self, golden, tmp_path):
        """The spool reference is the lazy fallback when the cache misses."""
        spool = tmp_path / "golden.pickle"
        spool.write_bytes(pickle.dumps(golden))
        faults = FaultModel("armv8", 1, seed=4).generate(golden.total_instructions, 2)
        job = JobBatcher(faults_per_job=8).batch(
            golden.scenario, None, faults, golden_ref=str(spool)
        )[0]
        evict_golden(golden.scenario.scenario_id)
        resolved = resolve_golden(job)
        assert resolved.total_instructions == golden.total_instructions
        assert golden.scenario.scenario_id in _WORKER_CACHE
        evict_golden(golden.scenario.scenario_id)

    def test_batcher_sorts_faults_by_injection_time(self, golden):
        faults = FaultModel("armv8", 1, seed=6).generate(golden.total_instructions, 30)
        jobs = JobBatcher(faults_per_job=10).batch(golden.scenario, golden, faults)
        times = [fault.injection_time for job in jobs for fault in job.faults]
        assert times == sorted(times)
        assert sorted(f.fault_id for job in jobs for f in job.faults) == list(range(30))


class TestCampaignReproducibility:
    """Serial and pooled campaigns must agree, with and without checkpoints."""

    @pytest.mark.parametrize("checkpoint_interval", [0, 2_000], ids=["no-checkpoints", "checkpointed"])
    def test_serial_and_pooled_reports_identical(self, checkpoint_interval):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(
            faults_per_scenario=12, seed=2018, checkpoint_interval=checkpoint_interval
        )
        serial = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(scenario)
        pooled = CampaignRunner(config, workers=2, faults_per_job=4).run_scenario(scenario)
        assert serial.counts == pooled.counts
        assert serial.percentages == pooled.percentages
        assert serial.masking_rate_pct == pooled.masking_rate_pct

    def test_checkpointing_does_not_change_outcomes(self):
        scenario = Scenario("IS", "omp", 2, "armv8")
        base = dict(faults_per_scenario=10, seed=77)
        plain = CampaignRunner(
            CampaignConfig(checkpoint_interval=0, **base), workers=0
        ).run_scenario(scenario)
        checkpointed = CampaignRunner(
            CampaignConfig(checkpoint_interval=1_000, **base), workers=0
        ).run_scenario(scenario)
        assert plain.counts == checkpointed.counts
        records_plain = [(r.fault.fault_id, r.outcome, r.executed_instructions) for r in plain.results]
        records_cp = [(r.fault.fault_id, r.outcome, r.executed_instructions) for r in checkpointed.results]
        assert records_plain == records_cp


class TestPoolContext:
    def test_auto_context_available(self):
        context = pool_context()
        assert hasattr(context, "Pool")

    def test_explicit_method_honoured(self):
        context = pool_context("spawn")
        assert context.get_start_method() == "spawn"

    def test_fallback_when_fork_unavailable(self, monkeypatch):
        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method in ("fork", "forkserver"):
                raise ValueError(f"cannot find context for {method!r}")
            return real_get_context(method)

        monkeypatch.setattr("repro.orchestration.runner.multiprocessing.get_context", no_fork)
        context = pool_context()
        assert context.get_start_method() == "spawn"

    def test_campaign_runs_under_spawn(self, monkeypatch):
        # spawn workers import repro afresh: make sure the children can
        # find the package even when only conftest put src on sys.path.
        src = str(Path(__file__).resolve().parent.parent / "src")
        import os

        existing = [p for p in os.environ.get("PYTHONPATH", "").split(":") if p]
        monkeypatch.setenv("PYTHONPATH", ":".join([src] + existing))
        scenario = Scenario("EP", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=6, seed=9)
        serial = CampaignRunner(config, workers=0, faults_per_job=2).run_scenario(scenario)
        spawned = CampaignRunner(
            config, workers=2, faults_per_job=2, start_method="spawn"
        ).run_scenario(scenario)
        assert serial.counts == spawned.counts


class TestGoldenCache:
    """The keyed per-worker golden cache behind the persistent pool."""

    def test_install_get_evict(self):
        cache = GoldenCache(capacity=2)
        cache.install("A", "golden-A")
        assert cache.get("A") == "golden-A"
        assert "A" in cache
        cache.evict("A")
        assert cache.get("A") is None
        cache.evict("A")  # idempotent

    def test_lru_eviction_order(self):
        cache = GoldenCache(capacity=2)
        cache.install("A", 1)
        cache.install("B", 2)
        assert cache.get("A") == 1  # refresh A: B is now least recent
        cache.install("C", 3)
        assert cache.ids() == ["A", "C"]
        assert cache.get("B") is None

    def test_invalid_capacity(self):
        with pytest.raises(SimulatorError):
            GoldenCache(capacity=0)

    def test_load_from_spool_file(self, golden, tmp_path):
        spool = tmp_path / "g.pickle"
        spool.write_bytes(pickle.dumps(golden))
        cache = GoldenCache()
        loaded = cache.load(golden.scenario.scenario_id, str(spool))
        assert loaded.total_instructions == golden.total_instructions
        assert golden.scenario.scenario_id in cache


class TestPersistentPool:
    """Install/evict broadcast on a pool that outlives scenarios."""

    def test_install_broadcast_then_evict_clears_workers(self, golden):
        scenario_id = golden.scenario.scenario_id
        faults = FaultModel("armv8", 1, seed=11).generate(golden.total_instructions, 4)
        with PersistentSuitePool(2) as pool:
            pool.install(scenario_id, golden)
            # No golden_ref on these jobs: success requires the install
            # broadcast to have populated the worker caches.
            jobs = JobBatcher(faults_per_job=2).batch(golden.scenario, None, faults)
            results, failures = pool.run_jobs(jobs, retries=0)
            assert len(results) == 4
            assert failures == []
            pool.evict(scenario_id)
            assert not Path(pool.spool_path(scenario_id)).exists()
            jobs = JobBatcher(faults_per_job=2).batch(golden.scenario, None, faults)
            results, failures = pool.run_jobs(jobs, retries=0)
            assert results == []
            assert len(failures) == 2
            assert all("no golden reference" in failure["error"] for failure in failures)

    def test_pool_requires_two_workers(self):
        with pytest.raises(SimulatorError):
            PersistentSuitePool(1)


class TestJobIsolation:
    """A poisoned job fails alone instead of sinking its scenario."""

    SCENARIO = Scenario("IS", "serial", 1, "armv8")

    def test_poisoned_job_fails_alone(self, monkeypatch):
        real_execute = runner_module.execute_job

        def poisoned(job):
            if job.job_id == 1:
                raise RuntimeError("poisoned job")
            return real_execute(job)

        monkeypatch.setattr(runner_module, "execute_job", poisoned)
        config = CampaignConfig(faults_per_scenario=12, seed=5)
        report = CampaignRunner(config, workers=0, faults_per_job=4, job_retries=1).run_scenario(
            self.SCENARIO
        )
        assert sum(report.counts.values()) == 8  # 12 faults minus the poisoned batch of 4
        assert len(report.job_failures) == 1
        failure = report.job_failures[0]
        assert failure["job_id"] == 1
        assert failure["faults"] == 4
        assert failure["attempts"] == 2  # initial round + one retry
        assert "RuntimeError: poisoned job" in failure["error"]
        assert report.as_record()["failed_jobs"] == 1

    def test_transient_failure_recovered_by_retry(self, monkeypatch):
        real_execute = runner_module.execute_job
        seen: dict[int, int] = {}

        def flaky(job):
            seen[job.job_id] = seen.get(job.job_id, 0) + 1
            if job.job_id == 2 and seen[job.job_id] == 1:
                raise RuntimeError("transient failure")
            return real_execute(job)

        config = CampaignConfig(faults_per_scenario=12, seed=5)
        clean = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(self.SCENARIO)
        monkeypatch.setattr(runner_module, "execute_job", flaky)
        retried = CampaignRunner(config, workers=0, faults_per_job=4, job_retries=1).run_scenario(
            self.SCENARIO
        )
        assert retried.job_failures == []
        assert retried.counts == clean.counts
        assert seen[2] == 2

    def test_guarded_execution_captures_error_type(self, golden):
        faults = FaultModel("armv8", 1, seed=12).generate(golden.total_instructions, 2)
        job = JobBatcher(faults_per_job=4).batch(golden.scenario, None, faults)[0]
        evict_golden(golden.scenario.scenario_id)
        job_id, results, error = _execute_job_guarded(job)
        assert job_id == job.job_id
        assert results is None
        assert error.startswith("SimulatorError:")


class TestSuiteResilience:
    """Failure paths of the resumable suite engine."""

    GOOD = [Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")]

    def _runner(self, progress=None, **kwargs):
        config = CampaignConfig(faults_per_scenario=6, seed=3)
        return CampaignRunner(config, workers=0, faults_per_job=3, progress=progress, **kwargs)

    def test_failed_scenario_recorded_and_suite_continues(self, tmp_path):
        bad = Scenario("ZZ", "serial", 1, "armv8")  # unknown app: golden phase raises
        store = CampaignStore(tmp_path / "store")
        database = self._runner().run_suite([self.GOOD[0], bad, self.GOOD[1]], store=store)
        assert len(database) == 2
        assert {f.scenario_id for f in database.failures} == {bad.scenario_id}
        assert database.failures[0].phase == "golden"
        assert database.failures[0].attempts == 1
        assert store.completed_ids() == {s.scenario_id for s in self.GOOD}
        stored = store.load_failures()
        assert len(stored) == 1 and stored[0].scenario_id == bad.scenario_id
        # the failure rides along in the persisted summary
        payload = database.to_dict()
        assert payload["failures"][0]["error_type"] == "KeyError"

    def test_resume_retries_failed_scenario_and_clears_record(self, tmp_path, monkeypatch):
        target = self.GOOD[1].scenario_id

        class FlakyCampaign(runner_module.ScenarioCampaign):
            def run_golden(self):
                if self.scenario.scenario_id == target:
                    raise RuntimeError("injected golden failure")
                return super().run_golden()

        store = CampaignStore(tmp_path / "store")
        monkeypatch.setattr(runner_module, "ScenarioCampaign", FlakyCampaign)
        first = self._runner().run_suite(self.GOOD, store=store)
        assert len(first) == 1 and len(first.failures) == 1
        monkeypatch.undo()
        resumed = self._runner().run_suite(self.GOOD, store=store, resume=True)
        assert len(resumed) == 2
        assert resumed.failures == []
        assert store.load_failures() == []
        assert store.completed_ids() == {s.scenario_id for s in self.GOOD}
        clean = self._runner().run_suite(self.GOOD)
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)

    def test_interrupt_preserves_shards_and_resume_is_bit_identical(self, tmp_path):
        store_dir = tmp_path / "store"
        fired = []

        def interrupt_after_first_scenario(message):
            if message.startswith("[suite]") and not fired:
                fired.append(message)
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            self._runner(progress=interrupt_after_first_scenario).run_suite(
                self.GOOD, store=store_dir
            )
        store = CampaignStore(store_dir)
        assert store.completed_ids() == {self.GOOD[0].scenario_id}
        resumed = self._runner().run_suite(self.GOOD, store=store, resume=True)
        assert len(resumed) == 2
        clean = self._runner().run_suite(self.GOOD)
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)

    def test_in_process_suite_evicts_golden_cache(self):
        self._runner().run_suite(self.GOOD)
        for scenario in self.GOOD:
            assert scenario.scenario_id not in _WORKER_CACHE

    def test_resume_without_store_runs_everything(self):
        database = self._runner().run_suite(self.GOOD, resume=True)
        assert len(database) == 2

    def test_fresh_run_refuses_populated_store(self, tmp_path):
        """A fresh run into an existing campaign store would leave stale
        shards behind, so it must raise instead of silently mixing."""
        store = CampaignStore(tmp_path / "store")
        self._runner().run_suite(self.GOOD, store=store)
        with pytest.raises(SimulatorError, match="already holds a campaign"):
            self._runner().run_suite(self.GOOD, store=store, resume=False)
        # continuing it explicitly is still fine
        database = self._runner().run_suite(self.GOOD, store=store, resume=True)
        assert len(database) == 2

    def test_assemble_failure_is_recorded_not_fatal(self, tmp_path):
        """A database collision surfaces as an 'assemble' ScenarioFailure."""
        prefilled = ResultsDatabase()
        prefilled.add_report(
            synthetic_report(app=self.GOOD[0].app, counts={"Vanished": 1})
        )
        store = CampaignStore(tmp_path / "store")
        result = self._runner().run_suite(self.GOOD, database=prefilled, store=store)
        # the second scenario still completed and was sharded
        assert self.GOOD[1].scenario_id in result
        assert self.GOOD[1].scenario_id in store.completed_ids()
        failures = {f.scenario_id: f for f in result.failures}
        assert failures[self.GOOD[0].scenario_id].phase == "assemble"
        assert failures[self.GOOD[0].scenario_id].error_type == "DuplicateReportError"

    def test_filtered_resume_keeps_manifest_union(self, tmp_path):
        """Resuming a subset must not shrink the manifest's suite coverage."""
        store = CampaignStore(tmp_path / "store")
        self._runner().run_suite(self.GOOD, store=store)
        self._runner().run_suite(self.GOOD[:1], store=store, resume=True)
        manifest = store.read_manifest()
        assert manifest["scenario_ids"] == [s.scenario_id for s in self.GOOD]
        # and the full suite still resumes cleanly afterwards
        database = self._runner().run_suite(self.GOOD, store=store, resume=True)
        assert len(database) == 2


class TestCampaignStore:
    def test_shard_round_trip_is_lossless(self, tmp_path):
        config = CampaignConfig(faults_per_scenario=5, seed=7)
        report = CampaignRunner(config, workers=0).run_scenario(Scenario("IS", "serial", 1, "armv8"))
        store = CampaignStore(tmp_path / "store")
        store.write_shard(report)
        loaded = store.load_shard(report.scenario_id)
        assert loaded.to_payload() == report.to_payload()
        assert loaded.scenario == report.scenario
        assert [r.fault for r in loaded.results] == [r.fault for r in report.results]

    def test_no_temp_files_left_behind(self, tmp_path, synthetic_database):
        store = CampaignStore(tmp_path / "store")
        for report in synthetic_database.reports.values():
            store.write_shard(report)
        leftovers = [p for p in (tmp_path / "store").rglob("*") if p.name.startswith(".")]
        assert leftovers == []
        assert len(store.completed_ids()) == len(synthetic_database)

    def test_resume_rejects_mismatched_config(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.write_manifest(["A"], CampaignConfig(seed=1).as_dict(), None)
        store.check_resumable(["A"], CampaignConfig(seed=1).as_dict(), None)  # same: fine
        with pytest.raises(SimulatorError):
            store.check_resumable(["A"], CampaignConfig(seed=2).as_dict(), None)
        with pytest.raises(SimulatorError):
            store.check_resumable(["A"], CampaignConfig(seed=1).as_dict(), 99)

    def test_resume_mismatch_names_the_differing_keys(self, tmp_path):
        """The rejection must say *what* differs, not just that it does."""
        store = CampaignStore(tmp_path / "store")
        store.write_manifest(["A"], CampaignConfig(seed=1, watchdog_multiplier=4).as_dict(), 50)
        with pytest.raises(SimulatorError, match=r"seed: store has 1, requested 2"):
            store.check_resumable(["A"], CampaignConfig(seed=2, watchdog_multiplier=4).as_dict(), 50)
        with pytest.raises(SimulatorError, match=r"faults: store has 50, requested 99"):
            store.check_resumable(["A"], CampaignConfig(seed=1).as_dict(), 99)
        # several mismatches are all named
        with pytest.raises(SimulatorError, match=r"seed:.*watchdog_multiplier:") as excinfo:
            store.check_resumable(
                ["A"], CampaignConfig(seed=3, watchdog_multiplier=8).as_dict(), 50
            )
        assert "checkpoint_interval" not in str(excinfo.value)  # matching keys stay out

    def test_resume_rejects_unknown_scenarios(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.write_manifest(["A", "B"], CampaignConfig().as_dict(), None)
        store.check_resumable(["A"], CampaignConfig().as_dict(), None)  # subset: fine
        with pytest.raises(SimulatorError):
            store.check_resumable(["A", "C"], CampaignConfig().as_dict(), None)

    def test_failure_record_round_trip_and_clear(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        failure = ScenarioFailure("X", "inject", "RuntimeError", "boom", attempts=2)
        store.write_failure(failure)
        assert store.load_failures() == [failure]
        store.clear_failure("X")
        assert store.load_failures() == []


def _race_acquire(root, owner, barrier, queue):
    """Claim one fixed scenario from a separate process (fork target)."""
    store = CampaignStore(root)
    barrier.wait()
    lease = store.acquire_lease("RACED", owner, ttl=60.0)
    queue.put((owner, lease is not None))


def _race_claim_next(root, owner, barrier, queue):
    """Drain claim_next from a separate process (fork target)."""
    store = CampaignStore(root)
    barrier.wait()
    claimed = []
    while True:
        lease = store.claim_next(owner, ttl=60.0)
        if lease is None:
            break
        claimed.append(lease.scenario_id)
    queue.put((owner, claimed))


class TestScenarioLeases:
    """The store's lease protocol: atomic claims, expiry, reclaim."""

    def test_acquire_is_exclusive_and_release_frees(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        lease = store.acquire_lease("A", "w1", ttl=60.0, now=1000.0)
        assert lease is not None and lease.owner == "w1"
        assert store.acquire_lease("A", "w2", ttl=60.0) is None
        assert store.read_lease("A").owner == "w1"
        assert store.release_lease("A", "w2") is False  # not the holder
        assert store.release_lease("A", "w1") is True
        assert store.read_lease("A") is None
        assert store.acquire_lease("A", "w2", ttl=60.0) is not None

    def test_lease_round_trip_and_expiry(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        lease = store.acquire_lease("A", "w1", ttl=10.0, now=1000.0)
        assert lease == ScenarioLease.from_dict(lease.as_dict())
        assert not lease.expired(now=1009.9)
        assert lease.expired(now=1010.0)
        assert store.renew_lease("A", "w1", now=1008.0) is True
        renewed = store.read_lease("A")
        assert renewed.renewed_at == 1008.0 and renewed.acquired_at == 1000.0
        assert not renewed.expired(now=1017.9)  # renewal pushed expiry out

    def test_renew_fails_for_lost_or_foreign_lease(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        assert store.renew_lease("A", "w1") is False  # never acquired
        store.acquire_lease("A", "w1", ttl=60.0)
        assert store.renew_lease("A", "w2") is False  # different owner

    def test_two_processes_race_exactly_one_wins(self, tmp_path):
        context = pool_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        processes = [
            context.Process(
                target=_race_acquire, args=(str(tmp_path / "store"), owner, barrier, queue)
            )
            for owner in ("w1", "w2")
        ]
        for process in processes:
            process.start()
        outcomes = dict(queue.get(timeout=30) for _ in processes)
        for process in processes:
            process.join(timeout=30)
        assert sorted(outcomes.values()) == [False, True]
        winner = next(owner for owner, won in outcomes.items() if won)
        store = CampaignStore(tmp_path / "store")
        assert store.read_lease("RACED").owner == winner

    def test_two_processes_partition_a_manifest(self, tmp_path):
        """claim_next across processes: every scenario claimed exactly once."""
        store = CampaignStore(tmp_path / "store")
        suite_ids = [f"S{i:02d}" for i in range(8)]
        store.write_manifest(suite_ids, CampaignConfig().as_dict(), None)
        context = pool_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        processes = [
            context.Process(
                target=_race_claim_next, args=(str(tmp_path / "store"), owner, barrier, queue)
            )
            for owner in ("w1", "w2")
        ]
        for process in processes:
            process.start()
        results = dict(queue.get(timeout=30) for _ in processes)
        for process in processes:
            process.join(timeout=30)
        claimed = results["w1"] + results["w2"]
        assert sorted(claimed) == suite_ids  # no scenario lost or double-claimed
        assert not set(results["w1"]) & set(results["w2"])

    def test_expiry_reclaim_no_duplicate_shard(self, tmp_path):
        """A stalled worker's result is discarded after its lease expired."""
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 2})
        sid = report.scenario_id
        store.write_manifest([sid], CampaignConfig().as_dict(), None)
        assert store.acquire_lease(sid, "w1", ttl=10.0, now=1000.0) is not None
        # w1 goes silent; at now=1020 its lease is expired and w2's
        # claim_next reclaims + re-leases the scenario.
        lease = store.claim_next("w2", ttl=10.0, now=1020.0)
        assert lease is not None and lease.scenario_id == sid and lease.owner == "w2"
        assert store.renew_lease(sid, "w1") is False  # w1 has lost it
        # w2 finishes first and commits.
        assert store.commit_leased(report, "w2") is True
        assert store.completed_ids() == {sid}
        assert store.read_lease(sid) is None
        # the stalled w1 resurfaces with its own result: refused.
        assert store.commit_leased(report, "w1") is False
        shards = list((tmp_path / "store" / "shards").glob("*"))
        assert [p.name for p in shards] == [f"{sid}.json"]  # exactly one shard

    def test_reclaim_only_removes_expired_leases(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.acquire_lease("A", "w1", ttl=60.0, now=1000.0)
        assert store.reclaim_lease("A", now=1030.0) is False  # still live
        assert store.read_lease("A") is not None
        assert store.reclaim_lease("A", now=1060.0) is True
        assert store.read_lease("A") is None
        assert store.reclaim_lease("A", now=1060.0) is False  # already gone
        leftovers = [p for p in (tmp_path / "store" / "leases").iterdir()]
        assert leftovers == []  # no tombstones left behind

    def test_claim_next_skips_completed_and_live_leases(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        report = synthetic_report(counts={"Vanished": 1})
        store.write_manifest(
            [report.scenario_id, "B", "C"], CampaignConfig().as_dict(), None
        )
        store.write_shard(report)  # completed
        store.acquire_lease("B", "other", ttl=60.0)  # live lease
        lease = store.claim_next("me", ttl=60.0)
        assert lease is not None and lease.scenario_id == "C"
        assert store.claim_next("me", ttl=60.0) is None  # nothing left
        assert store.pending_ids() == ["B", "C"]

    def test_heartbeat_renews_and_detects_loss(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.acquire_lease("A", "w1", ttl=0.4)
        with LeaseHeartbeat(store, "A", "w1", ttl=0.4) as heartbeat:
            first = store.read_lease("A").renewed_at
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.read_lease("A").renewed_at > first:
                    break
                time.sleep(0.02)
            assert store.read_lease("A").renewed_at > first
            assert heartbeat.lost is False
        # losing the lease flips the flag on the next beat
        with LeaseHeartbeat(store, "A", "w1", ttl=0.4) as heartbeat:
            store.release_lease("A", "w1")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not heartbeat.lost:
                time.sleep(0.02)
            assert heartbeat.lost is True

    def test_torn_lease_file_reads_as_live(self, tmp_path):
        """An empty/half-written claim must never be treated as free."""
        store = CampaignStore(tmp_path / "store")
        store.leases_dir.mkdir(parents=True)
        store.lease_path("A").write_text("")  # caught between O_EXCL and write
        lease = store.read_lease("A")
        assert lease is not None and lease.owner == "?"
        assert not lease.expired(now=lease.renewed_at + 1.0)
        assert store.acquire_lease("A", "w1") is None  # still claimed

    def test_write_shard_atomic_under_concurrent_scan(self, tmp_path):
        """completed_ids readers never observe a torn or temp shard."""
        store = CampaignStore(tmp_path / "store")
        reports = [
            synthetic_report(app=f"A{i:02d}", counts={"Vanished": i + 1}) for i in range(30)
        ]
        errors = []
        seen = set()
        stop = threading.Event()

        def scan():
            while not stop.is_set():
                for scenario_id in store.completed_ids():
                    try:
                        loaded = store.load_shard(scenario_id)
                        assert loaded.scenario_id == scenario_id
                        seen.add(scenario_id)
                    except Exception as exc:  # noqa: BLE001 — the assertion target
                        errors.append(f"{scenario_id}: {exc}")
                        stop.set()

        scanner = threading.Thread(target=scan)
        scanner.start()
        try:
            for report in reports:
                store.write_shard(report)
        finally:
            time.sleep(0.05)  # let the scanner observe the final state
            stop.set()
            scanner.join(timeout=30)
        assert errors == []
        assert store.completed_ids() == {report.scenario_id for report in reports}
        assert seen  # the scanner really ran against in-flight writes


class TestRunLeased:
    """The lease-driven suite driver (direct shared-filesystem mode)."""

    SCENARIOS = [Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")]

    def _runner(self, **kwargs):
        config = CampaignConfig(faults_per_scenario=6, seed=3)
        return CampaignRunner(config, workers=0, faults_per_job=3, **kwargs)

    def test_leased_run_matches_local_suite(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        leased = self._runner().run_leased(self.SCENARIOS, store, owner="w1")
        assert len(leased) == len(self.SCENARIOS)
        assert store.completed_ids() == {s.scenario_id for s in self.SCENARIOS}
        assert store.active_leases() == []
        clean = self._runner().run_suite(self.SCENARIOS)
        assert campaign_fingerprint(leased) == campaign_fingerprint(clean)

    def test_two_sequential_workers_partition_the_suite(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        # worker 1 takes everything; worker 2 arrives late and finds no work
        first = self._runner().run_leased(self.SCENARIOS, store, owner="w1")
        second = self._runner().run_leased(self.SCENARIOS, store, owner="w2")
        assert len(first) == 2 and len(second) == 0
        assert store.completed_ids() == {s.scenario_id for s in self.SCENARIOS}

    def test_leased_failure_recorded_and_lease_released(self, tmp_path):
        bad = Scenario("ZZ", "serial", 1, "armv8")
        store = CampaignStore(tmp_path / "store")
        database = self._runner().run_leased([bad, self.SCENARIOS[0]], store, owner="w1")
        assert len(database) == 1
        assert [f.scenario_id for f in database.failures] == [bad.scenario_id]
        assert store.load_failures()[0].phase == "run"
        assert store.active_leases() == []  # the failed scenario's lease was freed

    def test_leased_run_rejects_mismatched_store(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.write_manifest(
            [s.scenario_id for s in self.SCENARIOS],
            CampaignConfig(faults_per_scenario=6, seed=999).as_dict(),
            None,
        )
        with pytest.raises(SimulatorError, match="seed"):
            self._runner().run_leased(self.SCENARIOS, store)


class TestResultsDatabase:
    def test_queries(self, synthetic_database):
        assert len(synthetic_database) > 0
        assert "IS-MPI-4-armv7" in synthetic_database
        report = synthetic_database.get("IS-MPI-4-armv7")
        assert report.scenario.cores == 4
        selected = synthetic_database.select(app="IS", isa="armv7", mode="mpi")
        assert {r.scenario.cores for r in selected} == {1, 2, 4}
        totals = synthetic_database.outcome_totals()
        assert totals["Vanished"] > 0

    def test_scenario_records_flat(self, synthetic_database):
        records = synthetic_database.scenario_records()
        assert all("pct_UT" in record and "scenario_id" in record for record in records)

    def test_save_and_load_json(self, synthetic_database, tmp_path):
        path = synthetic_database.save_json(tmp_path / "campaign.json")
        payload = ResultsDatabase.load_json(path)
        assert len(payload["scenarios"]) == len(synthetic_database)
        with path.open() as handle:
            assert json.load(handle)["scenarios"]

    def test_export_csv(self, synthetic_database, tmp_path):
        path = synthetic_database.export_csv(tmp_path / "campaign.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(synthetic_database) + 1
        assert lines[0].startswith("scenario_id")

    def test_empty_database(self, tmp_path):
        database = ResultsDatabase()
        assert database.total_injections() == 0
        path = database.export_csv(tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_export_csv_quotes_commas_and_newlines(self, tmp_path):
        """Regression: raw join corrupted any field containing a comma."""
        import csv as csv_module

        report = synthetic_report(
            counts={"Vanished": 3, "UT": 1},
            stats={"note": "a,b", "multiline": "line1\nline2", "plain": 1.5},
        )
        database = ResultsDatabase()
        database.add_report(report)
        path = database.export_csv(tmp_path / "campaign.csv")
        with path.open(newline="") as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["stat_note"] == "a,b"
        assert rows[0]["stat_multiline"] == "line1\nline2"
        assert rows[0]["stat_plain"] == "1.5"
        assert rows[0]["scenario_id"] == "IS-SER-1-armv8"

    def test_add_report_rejects_duplicates(self, synthetic_database):
        report = next(iter(synthetic_database.reports.values()))
        with pytest.raises(DuplicateReportError):
            synthetic_database.add_report(report)
        before = len(synthetic_database)
        synthetic_database.add_report(report, replace=True)  # explicit escape hatch
        assert len(synthetic_database) == before

    def test_load_round_trips_queryable_database(self, synthetic_database, tmp_path):
        path = synthetic_database.save_json(tmp_path / "campaign.json")
        loaded = ResultsDatabase.load(path)
        assert len(loaded) == len(synthetic_database)
        assert loaded.outcome_totals() == synthetic_database.outcome_totals()
        assert loaded.total_injections() == synthetic_database.total_injections()
        report = loaded.get("IS-MPI-4-armv7")
        assert report is not None and report.scenario.cores == 4
        selected = loaded.select(app="IS", isa="armv7", mode="mpi")
        assert {r.scenario.cores for r in selected} == {1, 2, 4}
        # flat records survive the round trip exactly
        assert loaded.to_dict() == synthetic_database.to_dict()

    def test_load_reattaches_injections(self, tmp_path):
        config = CampaignConfig(faults_per_scenario=5, seed=13)
        report = CampaignRunner(config, workers=0).run_scenario(Scenario("IS", "serial", 1, "armv8"))
        database = ResultsDatabase()
        database.add_report(report)
        path = database.save_json(tmp_path / "full.json", include_injections=True)
        loaded = ResultsDatabase.load(path)
        loaded_report = loaded.get(report.scenario_id)
        assert len(loaded_report.results) == len(report.results)
        assert [r.fault for r in loaded_report.results] == [r.fault for r in report.results]
        assert [r.outcome for r in loaded_report.results] == [r.outcome for r in report.results]
        assert loaded.injection_records() == database.injection_records()

    def test_load_round_trips_job_failures(self, tmp_path, monkeypatch):
        """Regression: failed-job records must survive save_json -> load."""
        real_execute = runner_module.execute_job

        def poisoned(job):
            if job.job_id == 0:
                raise RuntimeError("poisoned job")
            return real_execute(job)

        monkeypatch.setattr(runner_module, "execute_job", poisoned)
        config = CampaignConfig(faults_per_scenario=8, seed=21)
        report = CampaignRunner(config, workers=0, faults_per_job=4, job_retries=0).run_scenario(
            Scenario("IS", "serial", 1, "armv8")
        )
        assert len(report.job_failures) == 1
        database = ResultsDatabase()
        database.add_report(report)
        loaded = ResultsDatabase.load(database.save_json(tmp_path / "failed.json"))
        loaded_report = loaded.get(report.scenario_id)
        assert loaded_report.job_failures == report.job_failures
        assert loaded_report.as_record()["failed_jobs"] == 1
        assert loaded.to_dict() == database.to_dict()

    def test_load_reconstructs_target_mix_scenarios(self):
        scenario = Scenario("IS", "serial", 1, "armv8").with_target_mix(
            {"gpr": 0.5, "memory": 0.5}
        )
        report = synthetic_report(counts={"Vanished": 2})
        record = report.as_record()
        record.update(scenario.describe())  # carries the mix label
        rebuilt = ScenarioReport.from_record(record)
        assert rebuilt.scenario == scenario
        assert rebuilt.scenario_id == scenario.scenario_id


class TestThroughputReporting:
    """--throughput plumbing: guest MIPS and per-scenario wall time."""

    def test_suite_line_carries_guest_mips(self):
        messages = []
        config = CampaignConfig(faults_per_scenario=8, keep_individual_results=False)
        runner = CampaignRunner(
            config, workers=0, progress=messages.append, throughput=True
        )
        runner.run_suite([Scenario("IS", "serial", 1, "armv8")])
        assert runner.guest_instructions > 0
        guest, wall = runner.last_scenario_throughput
        assert guest > 0 and wall > 0
        suite_lines = [m for m in messages if m.startswith("[suite]")]
        assert suite_lines
        assert any("guest MIPS" in line for line in suite_lines)
        assert any("last scenario" in line for line in suite_lines)

    def test_throughput_off_keeps_line_clean(self):
        messages = []
        config = CampaignConfig(faults_per_scenario=8, keep_individual_results=False)
        runner = CampaignRunner(config, workers=0, progress=messages.append)
        runner.run_suite([Scenario("IS", "serial", 1, "armv8")])
        assert runner.guest_instructions > 0  # tracked either way
        assert not any("guest MIPS" in m for m in messages)
