"""Tests of campaign orchestration: jobs, runner, results database."""

import json

import pytest

from repro.injection.campaign import CampaignConfig
from repro.injection.fault import FaultModel
from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import JobBatcher
from repro.orchestration.runner import CampaignRunner, execute_job


@pytest.fixture(scope="module")
def golden():
    return GoldenRunner(model_caches=False).run(Scenario("IS", "serial", 1, "armv8"), collect_stats=False)


class TestJobBatcher:
    def test_batch_sizes(self, golden):
        faults = FaultModel("armv8", 1, seed=1).generate(golden.total_instructions, 25)
        jobs = JobBatcher(faults_per_job=10).batch(golden.scenario, golden, faults)
        assert [len(job) for job in jobs] == [10, 10, 5]
        assert [job.job_id for job in jobs] == [0, 1, 2]
        assert jobs[0].describe()["scenario_id"] == golden.scenario.scenario_id

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            JobBatcher(faults_per_job=0)

    def test_execute_job_returns_results(self, golden):
        faults = FaultModel("armv8", 1, seed=2).generate(golden.total_instructions, 4)
        job = JobBatcher(faults_per_job=8).batch(golden.scenario, golden, faults)[0]
        results = execute_job(job)
        assert len(results) == 4
        assert all(r.scenario_id == golden.scenario.scenario_id for r in results)


class TestCampaignRunner:
    def test_serial_and_parallel_runs_agree(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=16, seed=42)
        serial = CampaignRunner(config, workers=0, faults_per_job=4).run_scenario(scenario)
        parallel = CampaignRunner(config, workers=4, faults_per_job=4).run_scenario(scenario)
        assert serial.counts == parallel.counts

    def test_run_suite_builds_database(self):
        config = CampaignConfig(faults_per_scenario=8, seed=1, keep_individual_results=True)
        runner = CampaignRunner(config, workers=0)
        database = runner.run_suite([Scenario("IS", "serial", 1, "armv8"), Scenario("EP", "serial", 1, "armv8")])
        assert len(database) == 2
        assert database.total_injections() == 16
        assert len(database.injection_records()) == 16

    def test_progress_callback_invoked(self):
        messages = []
        config = CampaignConfig(faults_per_scenario=4, seed=1)
        CampaignRunner(config, workers=0, progress=messages.append).run_scenario(Scenario("IS", "serial", 1, "armv8"))
        assert any(message.startswith("[golden]") for message in messages)
        assert any(message.startswith("[done]") for message in messages)


class TestResultsDatabase:
    def test_queries(self, synthetic_database):
        assert len(synthetic_database) > 0
        assert "IS-MPI-4-armv7" in synthetic_database
        report = synthetic_database.get("IS-MPI-4-armv7")
        assert report.scenario.cores == 4
        selected = synthetic_database.select(app="IS", isa="armv7", mode="mpi")
        assert {r.scenario.cores for r in selected} == {1, 2, 4}
        totals = synthetic_database.outcome_totals()
        assert totals["Vanished"] > 0

    def test_scenario_records_flat(self, synthetic_database):
        records = synthetic_database.scenario_records()
        assert all("pct_UT" in record and "scenario_id" in record for record in records)

    def test_save_and_load_json(self, synthetic_database, tmp_path):
        path = synthetic_database.save_json(tmp_path / "campaign.json")
        payload = ResultsDatabase.load_json(path)
        assert len(payload["scenarios"]) == len(synthetic_database)
        with path.open() as handle:
            assert json.load(handle)["scenarios"]

    def test_export_csv(self, synthetic_database, tmp_path):
        path = synthetic_database.export_csv(tmp_path / "campaign.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(synthetic_database) + 1
        assert lines[0].startswith("scenario_id")

    def test_empty_database(self, tmp_path):
        database = ResultsDatabase()
        assert database.total_injections() == 0
        path = database.export_csv(tmp_path / "empty.csv")
        assert path.read_text() == ""
