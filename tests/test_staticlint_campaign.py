"""End-to-end validation of the static vulnerability analysis.

Runs a small but real fault-injection campaign (2 ISAs x 2 programming
models, register targets) and checks that the statically predicted
masking ranks the scenarios the same way the measured masking does.
Also pins the unweighted campaign fingerprint to its pre-analysis
golden value: the weighted-sampling feature must not perturb default
fault lists by even one bit.
"""

import hashlib

import pytest

from repro.injection.campaign import CampaignConfig, Scenario, ScenarioCampaign
from repro.injection.fault import FaultModel, WeightedFaultModel
from repro.errors import SimulatorError
from repro.orchestration.database import ResultsDatabase, campaign_fingerprint
from repro.staticlint import analyze_scenario, validate_database

SEED = 2018

#: sha256 of the canonical fingerprint of the reference campaign below
#: (IS serial 1-core, gpr-only mix, 40 faults, seed 2018, armv7 then
#: armv8), captured before the weighted fault model existed.  The
#: unweighted path must keep producing bit-identical results.
GOLDEN_FINGERPRINT_SHA256 = "bad9c06da3f747979c1715abce75b7e6cd83b0ce5dfe995b3f51b0b10fbb80d2"
GOLDEN_FINGERPRINT_LEN = 31224


def _scenarios():
    return [
        Scenario(app="IS", mode=mode, cores=cores, isa=isa, target_mix=(("gpr", 1.0),))
        for isa in ("armv7", "armv8")
        for mode, cores in (("serial", 1), ("omp", 2))
    ]


@pytest.fixture(scope="module")
def validation_database():
    database = ResultsDatabase()
    for scenario in _scenarios():
        campaign = ScenarioCampaign(scenario, CampaignConfig(faults_per_scenario=80, seed=SEED))
        database.add_report(campaign.run())
    return database


class TestPredictedVsMeasured:
    def test_spearman_correlation(self, validation_database):
        report = validate_database(validation_database)
        assert len(report.rows) == 4
        assert report.overall_spearman is not None
        assert report.overall_spearman >= 0.5

    def test_rows_carry_both_quantities(self, validation_database):
        report = validate_database(validation_database)
        for row in report.rows:
            assert 0.0 <= row.predicted_masking_pct <= 100.0
            assert 0.0 <= row.measured_masking_pct <= 100.0
            assert row.faults > 0

    def test_render_mentions_correlation(self, validation_database):
        text = validate_database(validation_database).render()
        assert "Spearman" in text
        assert "predicted" in text.lower()

    def test_prediction_reproduces_isa_ordering(self):
        """The paper's headline: more architectural registers -> more
        masking.  The static prediction alone must already order armv8
        above armv7, before any injection is run."""
        masking = {}
        for isa in ("armv7", "armv8"):
            scenario = Scenario(app="IS", mode="serial", cores=1, isa=isa)
            vulnerability = analyze_scenario(scenario)
            masking[isa] = vulnerability.predicted_masking("gpr")
            assert 0.0 < masking[isa] < 1.0
        assert masking["armv8"] > masking["armv7"]


class TestFingerprintStability:
    def test_unweighted_fingerprint_is_bit_identical_to_pre_analysis(self):
        database = ResultsDatabase()
        for isa in ("armv7", "armv8"):
            scenario = Scenario(app="IS", mode="serial", cores=1, isa=isa, target_mix=(("gpr", 1.0),))
            report = ScenarioCampaign(
                scenario, CampaignConfig(faults_per_scenario=40, seed=SEED)
            ).run()
            database.add_report(report)
        fingerprint = campaign_fingerprint(database)
        assert len(fingerprint) == GOLDEN_FINGERPRINT_LEN
        assert hashlib.sha256(fingerprint.encode()).hexdigest() == GOLDEN_FINGERPRINT_SHA256


class TestWeightedFaultModel:
    def test_weighting_changes_only_register_indices(self):
        base = FaultModel("armv8", cores=1, seed=77, target_mix={"gpr": 1.0})
        weights = [0.0] * 32
        weights[5] = 1.0
        weights[7] = 3.0
        weighted = WeightedFaultModel(
            "armv8", cores=1, seed=77, target_mix={"gpr": 1.0}, gpr_weights=weights
        )
        plain = base.generate(10_000, 50)
        biased = weighted.generate(10_000, 50)
        assert len(plain) == len(biased)
        for a, b in zip(plain, biased):
            assert (a.injection_time, a.core_id, a.target_kind, a.bit) == (
                b.injection_time,
                b.core_id,
                b.target_kind,
                b.bit,
            )
            assert b.register_index in (5, 7)

    def test_no_weights_is_bit_identical_to_base_model(self):
        base = FaultModel("armv7", cores=2, seed=3)
        weighted = WeightedFaultModel("armv7", cores=2, seed=3)
        assert base.generate(5_000, 40) == weighted.generate(5_000, 40)

    def test_weight_validation(self):
        with pytest.raises(SimulatorError):
            WeightedFaultModel("armv8", cores=1, gpr_weights=[1.0] * 7)  # wrong length
        with pytest.raises(SimulatorError):
            WeightedFaultModel("armv8", cores=1, gpr_weights=[-1.0] + [1.0] * 31)
        with pytest.raises(SimulatorError):
            WeightedFaultModel("armv8", cores=1, gpr_weights=[0.0] * 32)

    def test_build_fault_list_weighted_vs_unweighted(self):
        scenario = Scenario(app="IS", mode="serial", cores=1, isa="armv8", target_mix=(("gpr", 1.0),))
        campaign = ScenarioCampaign(scenario, CampaignConfig(faults_per_scenario=30, seed=SEED))
        campaign.run_golden()
        unweighted_a = campaign.build_fault_list()
        unweighted_b = campaign.build_fault_list()
        assert unweighted_a == unweighted_b  # deterministic
        vulnerability = analyze_scenario(scenario)
        weighted = campaign.build_fault_list(vulnerability=vulnerability)
        assert len(weighted) == len(unweighted_a)
        changed = 0
        for plain, biased in zip(unweighted_a, weighted):
            assert plain.injection_time == biased.injection_time
            assert plain.target_kind == biased.target_kind
            assert plain.bit == biased.bit
            changed += plain.register_index != biased.register_index
        assert changed > 0  # the bias actually moved draws
