"""Compiler tests: optimizer folding plus end-to-end codegen correctness.

Codegen is validated by compiling small MiniC programs and executing
them on the simulator for both ISAs — the compiled result must print
the same values the equivalent Python expression produces.
"""

import pytest

from repro.compiler import ast
from repro.compiler.ast import ExprStmt, Function, Module, Return, assign, call, var
from repro.compiler.linker import link
from repro.compiler.optimizer import fold_expr, optimize_module
from repro.errors import CompileError, LinkError
from repro.isa.arch import ARMV7, ARMV8
from repro.isa.instructions import Op
from repro.runtime import runtime_modules
from repro.soc.multicore import build_system

ARCHES = [ARMV7, ARMV8]


def compile_and_run(body, locals_=None, globals_=None, functions=(), arch=ARMV8, with_float=False):
    main = Function(
        name="main",
        params=[("rank", ast.INT)],
        locals=locals_ or [],
        body=body,
        return_type=ast.INT,
    )
    module = Module("t", list(functions) + [main], globals_ or [])
    modules = [module] + (runtime_modules(arch) if with_float or not arch.has_hw_float else [])
    program = link(modules, arch, name="t")
    system = build_system(arch.name, cores=1)
    system.load_process(program, name="t")
    system.run(max_instructions=2_000_000)
    process = system.kernel.processes[0]
    assert process.state.value == "exited", system.kernel.process_summary()
    return process.output_text().split()


def expr_value(expr, arch=ARMV8, locals_=None, globals_=None, functions=(), setup=()):
    out = compile_and_run(
        list(setup) + [ExprStmt(call("print_int", expr, type=ast.VOID)), Return(ast.const(0))],
        locals_=locals_,
        globals_=globals_,
        functions=functions,
        arch=arch,
    )
    return int(out[-1])


class TestOptimizer:
    def test_constant_folding(self):
        folded = fold_expr(ast.add(ast.const(2), ast.mul(ast.const(3), ast.const(4))))
        assert isinstance(folded, ast.IntConst) and folded.value == 14

    def test_float_folding(self):
        folded = fold_expr(ast.mul(ast.FloatConst(2.0), ast.FloatConst(1.5)))
        assert isinstance(folded, ast.FloatConst) and folded.value == 3.0

    def test_identity_simplification(self):
        x = var("x")
        assert fold_expr(ast.add(x, ast.const(0))) is x
        assert fold_expr(ast.mul(x, ast.const(1))) is x
        assert fold_expr(ast.div(x, ast.const(1))) is x

    def test_comparison_folding(self):
        folded = fold_expr(ast.lt(ast.const(1), ast.const(2)))
        assert isinstance(folded, ast.IntConst) and folded.value == 1

    def test_division_by_zero_not_folded(self):
        expr = ast.div(ast.const(1), ast.const(0))
        assert isinstance(fold_expr(expr), ast.BinOp)

    def test_dead_branch_elimination(self):
        function = Function(
            name="f",
            params=[],
            body=[ast.If(ast.const(0), [Return(ast.const(1))], [Return(ast.const(2))])],
            return_type=ast.INT,
        )
        module = optimize_module(Module("m", [function], []))
        assert isinstance(module.functions[0].body[0], Return)

    def test_signed_constant_division_truncates_toward_zero(self):
        folded = fold_expr(ast.div(ast.const(-7), ast.const(2)))
        assert folded.value == -3


class TestIntegerCodegen:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_arithmetic_expression(self, arch):
        expr = ast.sub(ast.mul(ast.add(ast.const(3), ast.const(4)), ast.const(5)), ast.const(6))
        assert expr_value(expr, arch) == 29

    @pytest.mark.parametrize("arch", ARCHES)
    def test_division_and_modulo(self, arch):
        assert expr_value(ast.div(ast.const(17), ast.const(5)), arch) == 3
        assert expr_value(ast.mod(ast.const(17), ast.const(5)), arch) == 2

    @pytest.mark.parametrize("arch", ARCHES)
    def test_negative_numbers(self, arch):
        assert expr_value(ast.mul(ast.const(-3), ast.const(7)), arch) == -21
        assert expr_value(ast.div(ast.const(-7), ast.const(2)), arch) == -3

    @pytest.mark.parametrize("arch", ARCHES)
    def test_comparisons(self, arch):
        assert expr_value(ast.lt(ast.const(1), ast.const(2)), arch) == 1
        assert expr_value(ast.ge(ast.const(1), ast.const(2)), arch) == 0
        assert expr_value(ast.eq(ast.const(-5), ast.const(-5)), arch) == 1

    @pytest.mark.parametrize("arch", ARCHES)
    def test_unary_operators(self, arch):
        assert expr_value(ast.UnOp("neg", ast.const(9)), arch) == -9
        assert expr_value(ast.UnOp("not", ast.const(0)), arch) == 1
        assert expr_value(ast.UnOp("not", ast.const(3)), arch) == 0

    @pytest.mark.parametrize("arch", ARCHES)
    def test_shifts_and_bitwise(self, arch):
        assert expr_value(ast.BinOp("<<", ast.const(3), ast.const(4)), arch) == 48
        assert expr_value(ast.BinOp(">>", ast.const(-16), ast.const(2)), arch) == -4
        assert expr_value(ast.BinOp("&", ast.const(0b1100), ast.const(0b1010)), arch) == 0b1000
        assert expr_value(ast.BinOp("^", ast.const(0b1100), ast.const(0b1010)), arch) == 0b0110

    @pytest.mark.parametrize("arch", ARCHES)
    def test_loops_and_locals(self, arch):
        body = [
            assign("total", ast.const(0)),
            ast.for_range("i", ast.const(0), ast.const(10), [
                ast.If(ast.eq(ast.mod(var("i"), ast.const(2)), ast.const(0)),
                       [assign("total", ast.add(var("total"), var("i")))]),
            ]),
            ExprStmt(call("print_int", var("total"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("i", ast.INT), ("total", ast.INT)], arch=arch)
        assert out == ["20"]

    @pytest.mark.parametrize("arch", ARCHES)
    def test_while_with_break_continue(self, arch):
        body = [
            assign("i", ast.const(0)),
            assign("total", ast.const(0)),
            ast.While(ast.const(1), [
                assign("i", ast.add(var("i"), ast.const(1))),
                ast.If(ast.gt(var("i"), ast.const(10)), [ast.Break()]),
                ast.If(ast.eq(var("i"), ast.const(5)), [ast.Continue()]),
                assign("total", ast.add(var("total"), var("i"))),
            ]),
            ExprStmt(call("print_int", var("total"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("i", ast.INT), ("total", ast.INT)], arch=arch)
        assert out == [str(sum(range(1, 11)) - 5)]

    @pytest.mark.parametrize("arch", ARCHES)
    def test_global_arrays_and_stores(self, arch):
        body = [
            ast.for_range("i", ast.const(0), ast.const(8), [ast.store("arr", var("i"), ast.mul(var("i"), var("i")))]),
            assign("total", ast.const(0)),
            ast.for_range("i", ast.const(0), ast.const(8), [assign("total", ast.add(var("total"), ast.load("arr", var("i"))))]),
            ExprStmt(call("print_int", var("total"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("i", ast.INT), ("total", ast.INT)],
                              globals_=[ast.GlobalVar("arr", ast.INT, 8)], arch=arch)
        assert out == [str(sum(i * i for i in range(8)))]

    @pytest.mark.parametrize("arch", ARCHES)
    def test_function_calls_and_recursion(self, arch):
        fib = Function(
            name="fib",
            params=[("n", ast.INT)],
            body=[
                ast.If(ast.lt(var("n"), ast.const(2)), [Return(var("n"))]),
                Return(ast.add(call("fib", ast.sub(var("n"), ast.const(1))),
                               call("fib", ast.sub(var("n"), ast.const(2))))),
            ],
            return_type=ast.INT,
        )
        value = expr_value(call("fib", ast.const(10)), arch, functions=[fib])
        assert value == 55

    def test_register_spilling_with_many_locals(self):
        # more locals than callee-saved registers on v7 forces stack homes
        names = [f"v{i}" for i in range(12)]
        body = [assign(name, ast.const(i + 1)) for i, name in enumerate(names)]
        total = var(names[0])
        for name in names[1:]:
            total = ast.add(total, var(name))
        body += [ExprStmt(call("print_int", total, type=ast.VOID)), Return(ast.const(0))]
        out = compile_and_run(body, locals_=[(n, ast.INT) for n in names], arch=ARMV7)
        assert out == [str(sum(range(1, 13)))]


class TestFloatCodegen:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_float_pipeline(self, arch):
        body = [
            assign("x", ast.FloatConst(2.0)),
            assign("y", ast.div(ast.FloatConst(1.0), ast.fvar("x"))),
            assign("z", ast.fcall("sqrt", ast.add(ast.fvar("y"), ast.FloatConst(0.14)))),
            ExprStmt(call("print_float", ast.fvar("z"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("x", ast.FLOAT), ("y", ast.FLOAT), ("z", ast.FLOAT)], arch=arch)
        assert abs(float(out[0]) - 0.8) < 1e-2

    @pytest.mark.parametrize("arch", ARCHES)
    def test_int_float_conversions(self, arch):
        body = [
            assign("x", ast.int_to_float(ast.const(7))),
            assign("n", ast.float_to_int(ast.mul(ast.fvar("x"), ast.FloatConst(3.0)))),
            ExprStmt(call("print_int", var("n"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("x", ast.FLOAT), ("n", ast.INT)], arch=arch)
        assert out == ["21"]

    @pytest.mark.parametrize("arch", ARCHES)
    def test_float_comparison_controls_branch(self, arch):
        body = [
            assign("x", ast.FloatConst(0.25)),
            ast.If(ast.lt(ast.fvar("x"), ast.FloatConst(0.5)),
                   [ExprStmt(call("print_int", ast.const(1), type=ast.VOID))],
                   [ExprStmt(call("print_int", ast.const(0), type=ast.VOID))]),
            Return(ast.const(0)),
        ]
        out = compile_and_run(body, locals_=[("x", ast.FLOAT)], arch=arch)
        assert out == ["1"]

    def test_v7_emits_softfloat_calls_and_v8_does_not(self):
        main = Function(
            name="main", params=[("rank", ast.INT)], locals=[("x", ast.FLOAT)],
            body=[assign("x", ast.mul(ast.int_to_float(var("rank")), ast.FloatConst(3.0))), Return(ast.const(0))],
            return_type=ast.INT,
        )
        module = Module("t", [main], [])
        v7 = link([module] + runtime_modules(ARMV7), ARMV7, name="t")
        v8 = link([module] + runtime_modules(ARMV8), ARMV8, name="t")
        v7_calls = {i.label for i in v7.instructions if i.op == Op.BL}
        assert any(label and label.startswith("__sf_") for label in v7_calls)
        assert not any(i.op == Op.FMUL for i in v7.instructions if v7.function_of(v7.instructions.index(i)) == "main")
        assert any(i.op == Op.FMUL for i in v8.instructions)

    def test_v7_programs_are_larger_and_slower(self):
        # Table 1's shape: the software float library inflates the v7 run
        main = Function(
            name="main", params=[("rank", ast.INT)],
            locals=[("i", ast.INT), ("acc", ast.FLOAT)],
            body=[
                assign("acc", ast.FloatConst(0.0)),
                ast.for_range("i", ast.const(1), ast.const(30), [
                    assign("acc", ast.add(var("acc"), ast.div(ast.FloatConst(1.0), ast.int_to_float(var("i"))))),
                ]),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("t", [main], [])
        counts = {}
        for arch in ARCHES:
            program = link([module] + runtime_modules(arch), arch, name="t")
            system = build_system(arch.name, cores=1)
            system.load_process(program, name="t")
            system.run(max_instructions=5_000_000)
            counts[arch.name] = system.total_instructions
        assert counts["armv7"] > 10 * counts["armv8"]


class TestCompileErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError):
            compile_and_run([assign("nope", ast.const(1)), Return(ast.const(0))])

    def test_unknown_function(self):
        with pytest.raises(CompileError):
            compile_and_run([ExprStmt(call("does_not_exist")), Return(ast.const(0))])

    def test_missing_main(self):
        module = Module("m", [Function(name="f", params=[], body=[Return(ast.const(0))], return_type=ast.INT)], [])
        with pytest.raises(LinkError):
            link([module], ARMV8)

    def test_duplicate_global(self):
        module_a = Module("a", [], [ast.GlobalVar("x", ast.INT, 1)])
        main = Function(name="main", params=[], body=[Return(ast.const(0))], return_type=ast.INT)
        module_b = Module("b", [main], [ast.GlobalVar("x", ast.INT, 1)])
        with pytest.raises(LinkError):
            link([module_a, module_b], ARMV8)

    def test_float_array_accessed_as_int_rejected(self):
        with pytest.raises(CompileError):
            compile_and_run(
                [ExprStmt(call("print_int", ast.load("farr", ast.const(0)), type=ast.VOID)), Return(ast.const(0))],
                globals_=[ast.GlobalVar("farr", ast.FLOAT, 4)],
            )

    def test_builtin_arity_checked(self):
        with pytest.raises(CompileError):
            compile_and_run([ExprStmt(call("print_int", type=ast.VOID)), Return(ast.const(0))])
