"""Tests of the cross-layer data mining tool."""

import pytest
from hypothesis import given, strategies as st

from repro.mining.correlation import correlation_matrix, pearson, rank_correlations, spearman
from repro.mining.dataset import Dataset
from repro.mining.eda import build_analysis_dataset, outcome_by, scenario_summary_statistics
from repro.mining.indices import fb_index, fb_index_table, masking_comparison, memory_transaction_table, mismatch_table


@pytest.fixture
def dataset(synthetic_database):
    return Dataset(synthetic_database.scenario_records())


class TestDataset:
    def test_columns_and_selection(self, dataset):
        assert "scenario_id" in dataset.columns()
        armv7 = dataset.filter_equal(isa="armv7")
        assert len(armv7) > 0
        assert all(record["isa"] == "armv7" for record in armv7)

    def test_numeric_columns_and_describe(self, dataset):
        numeric = dataset.numeric_columns()
        assert "pct_UT" in numeric
        summary = dataset.describe(["pct_UT"])
        assert summary["pct_UT"]["count"] == len(dataset)
        assert summary["pct_UT"]["min"] <= summary["pct_UT"]["mean"] <= summary["pct_UT"]["max"]

    def test_group_by_and_mean(self, dataset):
        groups = dataset.group_by("isa")
        assert set(groups) == {"armv7", "armv8"}
        assert groups["armv7"].mean("pct_UT") > 0

    def test_sort_and_with_column(self, dataset):
        ordered = dataset.sort_by("pct_UT", reverse=True)
        values = ordered.numeric_column("pct_UT")
        assert values == sorted(values, reverse=True)
        extended = dataset.with_column("double_ut", lambda r: r["pct_UT"] * 2)
        assert extended.records[0]["double_ut"] == pytest.approx(extended.records[0]["pct_UT"] * 2)

    def test_join(self):
        left = Dataset([{"scenario_id": "a", "x": 1}, {"scenario_id": "b", "x": 2}])
        right = Dataset([{"scenario_id": "a", "y": 10}])
        joined = left.join(right, on="scenario_id")
        assert len(joined) == 1
        assert joined.records[0] == {"scenario_id": "a", "x": 1, "y": 10}

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50))
    def test_mean_matches_python(self, values):
        data = Dataset([{"v": value} for value in values])
        assert data.mean("v") == pytest.approx(sum(values) / len(values))

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=30))
    def test_min_max_bound_mean(self, values):
        data = Dataset([{"v": value} for value in values])
        assert data.min("v") - 1e-9 <= data.mean("v") <= data.max("v") + 1e-9


class TestCorrelation:
    def test_pearson_perfect_and_inverse(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert pearson(xs, [2.0, 4.0, 6.0, 8.0]) == pytest.approx(1.0)
        assert pearson(xs, [8.0, 6.0, 4.0, 2.0]) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson([1.0], [2.0]) == 0.0
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_spearman_monotonic(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [1.0, 8.0, 27.0, 64.0, 125.0]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_correlation_matrix_symmetric(self, dataset):
        matrix = correlation_matrix(dataset, ["pct_UT", "stat_memory_instruction_pct", "pct_Vanished"])
        assert matrix["pct_UT"]["pct_UT"] == 1.0
        assert matrix["pct_UT"]["pct_Vanished"] == pytest.approx(matrix["pct_Vanished"]["pct_UT"])

    def test_rank_correlations_surfaces_memory_ut_link(self, dataset):
        ranked = rank_correlations(dataset, target="pct_UT", candidates=["stat_memory_instruction_pct", "cores"])
        names = [name for name, _ in ranked]
        assert "stat_memory_instruction_pct" in names
        top_value = dict(ranked)["stat_memory_instruction_pct"]
        assert abs(top_value) > 0.3  # memory share correlates with UT share


class TestIndices:
    def test_fb_index_normalisation(self):
        assert fb_index(10.0, 5.0, baseline=50.0) == pytest.approx(1.0)
        assert fb_index(20.0, 5.0, baseline=50.0) == pytest.approx(2.0)
        assert fb_index(1.0, 1.0, baseline=0.0) == 0.0

    def test_fb_index_table_monotonic_for_is_mpi(self, dataset):
        rows = fb_index_table(dataset, app="IS", isa="armv7", mode="mpi")
        assert [row["cores"] for row in rows] == [1, 2, 4]
        assert rows[0]["fb_index"] == pytest.approx(1.0)
        indices = [row["fb_index"] for row in rows]
        assert indices == sorted(indices)

    def test_mismatch_table(self, dataset):
        rows = mismatch_table(dataset, isa="armv7", apps=["IS"])
        assert len(rows) == 3
        for row in rows:
            assert row["total_mismatch"] >= 0.0
            assert row["total_mismatch"] == pytest.approx(
                sum(abs(row[f"diff_{k}"]) for k in ("Vanished", "ONA", "OMM", "UT", "Hang"))
            )

    def test_memory_transaction_table(self, dataset):
        rows = memory_transaction_table(dataset, ["MG-MPI-1-armv7", "MG-MPI-4-armv7"])
        assert len(rows) == 2
        assert rows[1]["ut_pct"] > rows[0]["ut_pct"]
        assert rows[1]["mem_inst_pct"] > rows[0]["mem_inst_pct"]

    def test_masking_comparison(self, dataset):
        summary = masking_comparison(dataset, isa="armv8")
        assert summary["comparisons"] >= 3
        assert 0 <= summary["mpi_wins"] <= summary["comparisons"]


class TestEda:
    def test_build_analysis_dataset(self, synthetic_database):
        dataset = build_analysis_dataset(synthetic_database)
        assert len(dataset) == len(synthetic_database)
        assert "pct_UT" in dataset.columns()

    def test_summary_statistics(self, synthetic_database):
        dataset = build_analysis_dataset(synthetic_database)
        summary = scenario_summary_statistics(dataset)
        assert "pct_UT" in summary and "masking_rate_pct" in summary

    def test_outcome_by_isa(self, synthetic_database):
        dataset = build_analysis_dataset(synthetic_database)
        grouped = outcome_by(dataset, "isa")
        assert set(grouped) == {"armv7", "armv8"}
        for stats in grouped.values():
            total = stats["Vanished"] + stats["ONA"] + stats["OMM"] + stats["UT"] + stats["Hang"]
            assert total == pytest.approx(100.0, abs=1.0)
