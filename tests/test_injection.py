"""Tests of the fault injection framework: model, classifier, injector, campaign."""

import pytest

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.injection.classify import (
    Outcome,
    classify_run,
    empty_outcome_counts,
    masking_rate,
    mismatch,
    outcome_percentages,
    total_mismatch,
)
from repro.injection.fault import FaultDescriptor, FaultModel, TARGET_GPR, TARGET_PC
from repro.injection.golden import GoldenRunner
from repro.injection.injector import FaultInjector
from repro.npb.suite import Scenario


@pytest.fixture(scope="module")
def golden_is_armv8():
    return GoldenRunner(model_caches=False).run(Scenario("IS", "serial", 1, "armv8"), collect_stats=False)


class TestFaultModel:
    def test_generation_is_reproducible(self):
        model_a = FaultModel("armv8", cores=2, seed=7)
        model_b = FaultModel("armv8", cores=2, seed=7)
        assert model_a.generate(10_000, 50) == model_b.generate(10_000, 50)

    def test_different_seeds_differ(self):
        a = FaultModel("armv8", cores=2, seed=1).generate(10_000, 50)
        b = FaultModel("armv8", cores=2, seed=2).generate(10_000, 50)
        assert a != b

    def test_targets_within_bounds(self):
        faults = FaultModel("armv7", cores=4, seed=3).generate(5_000, 200)
        for fault in faults:
            assert 1 <= fault.injection_time < 5_000
            assert 0 <= fault.core_id < 4
            if fault.target_kind == TARGET_GPR:
                assert 0 <= fault.register_index < 16
                assert 0 <= fault.bit < 32
            if fault.target_kind == TARGET_PC:
                assert 0 <= fault.bit < 32

    def test_times_cover_the_lifespan(self):
        faults = FaultModel("armv8", cores=1, seed=11).generate(100_000, 400)
        times = [f.injection_time for f in faults]
        assert min(times) < 20_000 and max(times) > 80_000

    def test_gpr_is_default_dominant_target(self):
        faults = FaultModel("armv8", cores=1, seed=5).generate(10_000, 300)
        gpr = sum(1 for f in faults if f.target_kind == TARGET_GPR)
        assert gpr > 250

    def test_fpr_targets_rejected_on_v7(self):
        with pytest.raises(SimulatorError):
            FaultModel("armv7", cores=1, target_mix={"fpr": 1.0})

    def test_memory_targets_need_ranges(self):
        model = FaultModel("armv8", cores=1, target_mix={"memory": 1.0})
        with pytest.raises(SimulatorError):
            model.generate(10_000, 5)
        faults = model.generate(10_000, 5, memory_ranges=[(0x1000, 0x100)])
        assert all(0x1000 <= f.address < 0x1100 for f in faults)

    def test_too_short_golden_rejected(self):
        with pytest.raises(SimulatorError):
            FaultModel("armv8", cores=1).generate(2, 5)

    def test_descriptor_labels(self):
        fault = FaultDescriptor(0, 10, 0, TARGET_GPR, 13, 4)
        from repro.isa.arch import ARMV7
        assert fault.target_label(ARMV7) == "sp"
        assert FaultDescriptor(0, 10, 0, TARGET_PC, 0, 1).target_label() == "pc"


class TestClassifier:
    def _classify(self, **overrides):
        defaults = dict(
            any_process_killed=False,
            all_exited_zero=True,
            watchdog_expired=False,
            deadlocked=False,
            output_matches=True,
            memory_matches=True,
            state_matches=True,
        )
        defaults.update(overrides)
        return classify_run(**defaults).outcome

    def test_vanished(self):
        assert self._classify() == Outcome.VANISHED

    def test_ona(self):
        assert self._classify(state_matches=False) == Outcome.ONA

    def test_omm_output_or_memory(self):
        assert self._classify(output_matches=False) == Outcome.OMM
        assert self._classify(memory_matches=False) == Outcome.OMM

    def test_ut_dominates(self):
        assert self._classify(any_process_killed=True, watchdog_expired=True) == Outcome.UT
        assert self._classify(all_exited_zero=False) == Outcome.UT

    def test_hang_on_watchdog_or_deadlock(self):
        assert self._classify(watchdog_expired=True) == Outcome.HANG
        assert self._classify(deadlocked=True, memory_matches=False) == Outcome.HANG

    def test_percentages_and_masking(self):
        counts = empty_outcome_counts()
        counts.update({"Vanished": 50, "ONA": 25, "OMM": 10, "UT": 10, "Hang": 5})
        pct = outcome_percentages(counts)
        assert pct["Vanished"] == 50.0
        assert sum(pct.values()) == pytest.approx(100.0)
        assert masking_rate(counts) == 75.0

    def test_mismatch_metric(self):
        a = {"Vanished": 60.0, "UT": 40.0}
        b = {"Vanished": 50.0, "UT": 50.0}
        assert mismatch(a, b)["Vanished"] == pytest.approx(10.0)
        assert total_mismatch(a, b) == pytest.approx(20.0)

    def test_empty_counts_are_zero(self):
        assert masking_rate(empty_outcome_counts()) == 0.0
        assert all(v == 0.0 for v in outcome_percentages(empty_outcome_counts()).values())


class TestInjector:
    def test_unused_register_fault_vanishes_or_stays_latent(self, golden_is_armv8):
        scenario = golden_is_armv8.scenario
        injector = FaultInjector(scenario, golden_is_armv8)
        # x17 is never used by the code generator (not in any ABI set)
        fault = FaultDescriptor(0, injection_time=golden_is_armv8.total_instructions // 2,
                                core_id=0, target_kind=TARGET_GPR, register_index=17, bit=3)
        result = injector.run_one(fault)
        assert result.outcome in (Outcome.VANISHED.value, Outcome.ONA.value)

    def test_stack_pointer_fault_is_disruptive(self, golden_is_armv8):
        scenario = golden_is_armv8.scenario
        injector = FaultInjector(scenario, golden_is_armv8)
        # flipping a high bit of SP early in the run sends every stack access
        # to unmapped memory: expect an Unexpected Termination or a Hang
        fault = FaultDescriptor(1, injection_time=200, core_id=0,
                                target_kind=TARGET_GPR, register_index=31, bit=27)
        result = injector.run_one(fault)
        assert result.outcome in (Outcome.UT.value, Outcome.HANG.value)

    def test_pc_fault_high_bit_is_detected(self, golden_is_armv8):
        injector = FaultInjector(golden_is_armv8.scenario, golden_is_armv8)
        fault = FaultDescriptor(2, injection_time=500, core_id=0,
                                target_kind=TARGET_PC, register_index=0, bit=26)
        result = injector.run_one(fault)
        assert result.outcome in (Outcome.UT.value, Outcome.HANG.value)

    def test_injection_is_deterministic(self, golden_is_armv8):
        injector = FaultInjector(golden_is_armv8.scenario, golden_is_armv8)
        fault = FaultDescriptor(3, injection_time=1234, core_id=0,
                                target_kind=TARGET_GPR, register_index=2, bit=12)
        first = injector.run_one(fault)
        second = injector.run_one(fault)
        assert first.outcome == second.outcome
        assert first.executed_instructions == second.executed_instructions

    def test_result_record_fields(self, golden_is_armv8):
        injector = FaultInjector(golden_is_armv8.scenario, golden_is_armv8)
        fault = FaultDescriptor(4, injection_time=100, core_id=0,
                                target_kind=TARGET_GPR, register_index=0, bit=0)
        record = injector.run_one(fault).as_record()
        assert record["scenario_id"] == golden_is_armv8.scenario.scenario_id
        assert record["outcome"] in {o.value for o in Outcome}
        assert record["injection_time"] == 100


class TestGoldenRunner:
    def test_golden_captures_reference_behaviour(self, golden_is_armv8):
        assert golden_is_armv8.exit_ok
        assert golden_is_armv8.total_instructions > 1_000
        assert golden_is_armv8.output.strip() != ""
        assert golden_is_armv8.memory_snapshots
        assert golden_is_armv8.watchdog_budget() >= 4 * golden_is_armv8.total_instructions

    def test_golden_collects_stats_when_requested(self):
        golden = GoldenRunner(model_caches=True).run(Scenario("EP", "serial", 1, "armv8"))
        assert golden.stats["total_instructions"] > 0
        assert "total_branch_pct" in golden.stats
        assert golden.stats["arch_has_hw_float"] == 1.0


class TestScenarioCampaign:
    def test_small_campaign_end_to_end(self):
        config = CampaignConfig(faults_per_scenario=25, seed=99)
        campaign = ScenarioCampaign(Scenario("IS", "serial", 1, "armv8"), config)
        report = campaign.run()
        assert report.faults_injected == 25
        assert sum(report.counts.values()) == 25
        assert 0.0 <= report.masking_rate_pct <= 100.0
        assert report.golden_summary["instructions"] > 0
        record = report.as_record()
        assert record["faults"] == 25
        assert "pct_Vanished" in record

    def test_fault_list_reproducible_across_campaigns(self):
        config = CampaignConfig(faults_per_scenario=10, seed=5)
        scenario = Scenario("IS", "serial", 1, "armv8")
        a = ScenarioCampaign(scenario, config)
        b = ScenarioCampaign(scenario, config)
        assert a.build_fault_list() == b.build_fault_list()
