"""Tests of checkpoint-rollback recovery (the ``+rec`` hardening axis).

Covers the recovery scheme grammar, the Recovered outcome's exact place
in the classifier's dominance order, the injector's rollback loop
(boot-rollback, walk-back through latent-corruption snapshots, bounded
retries with escalation), the recovery metadata's serialisation through
records/payloads (including legacy-payload tolerance), the recovery
analysis table — and the acceptance campaign: 2 ISAs x {serial, omp}
x {dwc, dwc+rec} through ``run_suite`` with every driver (reference,
resume, leased, pooled, adaptive) producing bit-identical fingerprints,
while non-recovery fingerprints stay pinned to their pre-recovery
golden value.
"""

import hashlib
import itertools

import pytest

from repro.analysis.hardening_table import hardening_rows
from repro.analysis.recovery_table import recovery_rows, render_recovery_table
from repro.hardening import (
    DEFAULT_RECOVERY_RETRIES,
    compile_scheme,
    hardening_label,
    normalize_hardening,
    recovery_retries,
)
from repro.injection.campaign import (
    CampaignConfig,
    ScenarioCampaign,
    ScenarioReport,
)
from repro.injection.classify import (
    NOT_INJECTED,
    Outcome,
    classify_run,
    recovery_rate,
)
from repro.injection.golden import GoldenRunner
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario, ScenarioSuite, instruction_budget
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import ResultsDatabase, campaign_fingerprint

SEED = 2018

#: sha256 of the canonical fingerprint of the non-recovery reference
#: campaign below (IS serial 1-core, {off, dwc}, 40 faults, seed 2018,
#: armv7 then armv8), captured at the commit *before* recovery existed.
#: Recovery is harness-side only: rec-less binaries, fault lists and
#: records must keep producing byte-identical results.
PRE_RECOVERY_FINGERPRINT_SHA256 = (
    "d74429999107de4b2b92b468a77981e9b0b2578297e8fc2dc551b08f03a1d972"
)
PRE_RECOVERY_FINGERPRINT_LEN = 61792


# ---------------------------------------------------------------------------
# scheme grammar
# ---------------------------------------------------------------------------


class TestRecoveryGrammar:
    def test_normalization_and_canonical_order(self):
        assert normalize_hardening("dwc+rec") == "dwc+rec"
        assert normalize_hardening("rec+dwc") == "dwc+rec"
        assert normalize_hardening("rec2+cfc+dwc4") == "dwc4+cfc+rec2"
        assert hardening_label("rec+dwc") == "dwc+rec"

    def test_rec_requires_a_detection_component(self):
        for scheme in ("rec", "rec3"):
            with pytest.raises(ValueError, match="no detection component"):
                normalize_hardening(scheme)

    def test_rec_bounds(self):
        assert recovery_retries("dwc+rec") == DEFAULT_RECOVERY_RETRIES
        assert recovery_retries("dwc+rec1") == 1
        assert recovery_retries("cfc+rec7") == 7
        assert recovery_retries("dwc") is None
        assert recovery_retries("off") is None
        assert recovery_retries(None) is None
        with pytest.raises(ValueError):
            normalize_hardening("dwc+rec0")

    def test_compile_scheme_strips_recovery_only(self):
        assert compile_scheme("dwc+rec") == "dwc"
        assert compile_scheme("rec5+cfc+dwc2") == "dwc2+cfc"
        assert compile_scheme("dwc+cfc") == "dwc+cfc"
        assert compile_scheme("off") is None
        assert compile_scheme(None) is None

    def test_scenario_id_carries_the_policy(self):
        scenario = Scenario("IS", "serial", 1, "armv8", hardening="rec2+dwc")
        assert scenario.scenario_id.endswith("-dwc+rec2")
        twin = scenario.with_hardening(compile_scheme(scenario.hardening))
        assert twin.scenario_id.endswith("-dwc")

    def test_instruction_budget_ignores_recovery_component(self):
        rec = Scenario("IS", "serial", 1, "armv8", hardening="dwc+rec")
        dwc = Scenario("IS", "serial", 1, "armv8", hardening="dwc")
        assert instruction_budget(rec) == instruction_budget(dwc)


# ---------------------------------------------------------------------------
# classifier dominance
# ---------------------------------------------------------------------------


def _classify(**overrides):
    kwargs = dict(
        any_process_killed=False,
        all_exited_zero=True,
        watchdog_expired=False,
        deadlocked=False,
        output_matches=True,
        memory_matches=True,
        state_matches=True,
        fault_detected=False,
        recovery_rollbacks=0,
    )
    kwargs.update(overrides)
    return classify_run(**kwargs)


class TestRecoveredClassification:
    def test_clean_rollback_is_recovered(self):
        outcome = _classify(recovery_rollbacks=1)
        assert outcome.outcome is Outcome.RECOVERED
        assert "golden output reproduced" in outcome.detail

    def test_latent_state_divergence_still_recovered_but_noted(self):
        outcome = _classify(recovery_rollbacks=2, state_matches=False)
        assert outcome.outcome is Outcome.RECOVERED
        assert "latent architectural state divergence" in outcome.detail

    def test_escalated_detection_dominates_recovered(self):
        # Detection survived the retry budget: fail-stop Detected, with
        # the rollback history in the detail.
        outcome = _classify(recovery_rollbacks=3, fault_detected=True)
        assert outcome.outcome is Outcome.DETECTED
        assert "persisted through 3 rollback(s)" in outcome.detail

    def test_silent_divergence_after_rollback_is_omm_not_recovered(self):
        # Recovery must never hide a wrong answer: a run that rolled
        # back and then completed with different output/memory is an
        # OMM, exactly as if no recovery had happened.
        for mismatch in ({"output_matches": False}, {"memory_matches": False}):
            outcome = _classify(recovery_rollbacks=1, **mismatch)
            assert outcome.outcome is Outcome.OMM
            assert "silent divergence after 1 rollback(s)" in outcome.detail

    def test_hang_after_rollback_stays_hang(self):
        assert _classify(recovery_rollbacks=1, watchdog_expired=True).outcome is Outcome.HANG
        assert _classify(recovery_rollbacks=1, deadlocked=True).outcome is Outcome.HANG

    def test_crash_after_rollback_stays_ut(self):
        assert _classify(recovery_rollbacks=1, any_process_killed=True).outcome is Outcome.UT
        assert _classify(recovery_rollbacks=1, all_exited_zero=False).outcome is Outcome.UT

    def test_exhaustive_dominance_matrix(self):
        # Recovered is claimed exactly when >=1 rollback happened and
        # NOTHING else is wrong — every abnormal flag, in any
        # combination, takes its usual precedence over Recovered.
        flags = (
            "fault_detected",
            "any_process_killed",
            "watchdog_expired",
            "deadlocked",
            "bad_exit",
            "output_mismatch",
            "memory_mismatch",
        )
        for rollbacks in (0, 2):
            for raised in itertools.product((False, True), repeat=len(flags)):
                named = dict(zip(flags, raised))
                outcome = _classify(
                    recovery_rollbacks=rollbacks,
                    fault_detected=named["fault_detected"],
                    any_process_killed=named["any_process_killed"],
                    watchdog_expired=named["watchdog_expired"],
                    deadlocked=named["deadlocked"],
                    all_exited_zero=not named["bad_exit"],
                    output_matches=not named["output_mismatch"],
                    memory_matches=not named["memory_mismatch"],
                ).outcome
                if any(raised):
                    assert outcome is not Outcome.RECOVERED, named
                    # the pre-recovery ladder is untouched
                    if named["fault_detected"]:
                        assert outcome is Outcome.DETECTED
                    elif named["any_process_killed"]:
                        assert outcome is Outcome.UT
                    elif named["watchdog_expired"] or named["deadlocked"]:
                        assert outcome is Outcome.HANG
                elif rollbacks > 0:
                    assert outcome is Outcome.RECOVERED
                else:
                    assert outcome is Outcome.VANISHED

    def test_recovery_rate_excludes_not_injected(self):
        counts = {"Vanished": 5, "Recovered": 3, "Detected": 2, NOT_INJECTED: 10}
        assert recovery_rate(counts) == pytest.approx(100.0 * 3 / 10)
        assert recovery_rate({"Vanished": 4}) == 0.0
        assert recovery_rate({}) == 0.0


# ---------------------------------------------------------------------------
# the rollback loop, injector level
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recovery_campaign():
    """One recovery campaign and its rec-less twin on the same faults."""
    # armv7: this seed's fault list includes both shallow-latency
    # detections (recover on the first rollback) and a deep-latency one
    # whose corrupted live snapshot forces a multi-rollback walk-back
    config = CampaignConfig(faults_per_scenario=150, seed=SEED, checkpoint_interval=1000)
    twin = ScenarioCampaign(Scenario("IS", "serial", 1, "armv7", hardening="dwc"), config)
    rec = ScenarioCampaign(Scenario("IS", "serial", 1, "armv7", hardening="dwc+rec"), config)
    return twin.run(), rec.run(), twin, rec


class TestRollbackLoop:
    def test_same_fault_list_as_the_recless_twin(self, recovery_campaign):
        twin_report, rec_report, twin, rec = recovery_campaign
        twin_faults = [f.as_dict() for f in twin.build_fault_list()]
        rec_faults = [f.as_dict() for f in rec.build_fault_list()]
        assert twin_faults == rec_faults

    def test_detected_becomes_recovered_on_the_same_faults(self, recovery_campaign):
        twin_report, rec_report, _, _ = recovery_campaign
        assert twin_report.counts.get("Detected", 0) > 0
        assert rec_report.counts.get("Recovered", 0) > 0
        assert rec_report.counts.get("Detected", 0) < twin_report.counts.get("Detected", 0)
        # every non-(Detected|Recovered) bucket is untouched by the
        # policy: recovery only intercepts detections
        for outcome in ("Vanished", "ONA", "OMM", "UT", "Hang", NOT_INJECTED):
            assert rec_report.counts.get(outcome, 0) == twin_report.counts.get(outcome, 0)
        assert (
            rec_report.counts.get("Recovered", 0) + rec_report.counts.get("Detected", 0)
            == twin_report.counts.get("Detected", 0)
        )

    def test_recovered_runs_reexecuted_and_finished(self, recovery_campaign):
        _, rec_report, _, rec = recovery_campaign
        recovered = [r for r in rec_report.results if r.outcome == "Recovered"]
        assert recovered
        for result in recovered:
            assert result.recovery["rollbacks"] >= 1
            assert result.recovery["reexecuted_instructions"] > 0
            assert not result.recovery["escalated"]
            # the recovered run completed the full workload
            assert result.executed_instructions == rec.golden.total_instructions

    def test_unrecovered_detections_carry_escalation(self, recovery_campaign):
        _, rec_report, _, _ = recovery_campaign
        for result in rec_report.results:
            if result.outcome == "Detected":
                assert result.recovery["escalated"]
                assert result.recovery["rollbacks"] >= 1

    def test_boot_rollback_recovers_without_checkpoints(self, recovery_campaign):
        # With checkpointing disabled the implicit boot candidate is the
        # only restore point: a detected fault must still recover, by
        # re-executing from instruction 0.
        twin_report, _, twin, _ = recovery_campaign
        detected = next(r.fault for r in twin_report.results if r.outcome == "Detected")
        scenario = twin.scenario.with_hardening("dwc+rec")
        golden = GoldenRunner(model_caches=False).run(twin.scenario, collect_stats=False)
        assert not golden.checkpoints
        result = FaultInjector(scenario, golden).run_one(detected)
        assert result.outcome == "Recovered"
        assert result.recovery["rollbacks"] == 1
        # boot rollback re-executes the whole detected prefix
        assert result.recovery["reexecuted_instructions"] >= detected.injection_time

    def test_multi_rollback_walkback_reaches_clean_state(self, recovery_campaign):
        # A detection whose latency spans a checkpoint boundary first
        # restores a live snapshot carrying the latent corruption,
        # deterministically re-detects, and walks back to a strictly
        # earlier (clean) restore point.
        _, rec_report, _, _ = recovery_campaign
        multi = [
            r for r in rec_report.results
            if r.recovery is not None and r.recovery["rollbacks"] >= 2
        ]
        assert multi, "expected at least one multi-rollback injection"
        for result in multi:
            assert result.outcome in ("Recovered", "Detected")
            assert result.recovery["reexecuted_instructions"] > 0

    def test_single_retry_budget_escalates_on_redetection(self, recovery_campaign):
        # The same deep-latency fault under rec1: the single retry is
        # burned on the corrupted live snapshot, the re-detection finds
        # the budget empty, and the run escalates to fail-stop Detected.
        _, rec_report, _, rec = recovery_campaign
        multi = next(
            r for r in rec_report.results
            if r.recovery is not None and r.recovery["rollbacks"] >= 2
        )
        injector = FaultInjector(
            rec.scenario.with_hardening("dwc+rec1"),
            rec.golden,
            watchdog_multiplier=rec.config.watchdog_multiplier,
        )
        result = injector.run_one(multi.fault)
        assert result.outcome == "Detected"
        assert result.recovery["escalated"]
        assert result.recovery["rollbacks"] == 1
        assert "persisted through 1 rollback(s)" in result.detail

    def test_not_injected_faults_have_no_recovery_metadata(self, recovery_campaign):
        _, rec_report, _, rec = recovery_campaign
        from repro.injection.fault import FaultDescriptor, TARGET_GPR

        late = FaultDescriptor(
            fault_id=0,
            injection_time=rec.golden.total_instructions + 10,
            core_id=0,
            target_kind=TARGET_GPR,
            register_index=2,
            bit=1,
        )
        injector = FaultInjector(rec.scenario, rec.golden)
        result = injector.run_one(late)
        assert result.outcome == NOT_INJECTED
        assert result.recovery is None


# ---------------------------------------------------------------------------
# serialisation: records, payloads, legacy tolerance
# ---------------------------------------------------------------------------


class TestRecoverySerialisation:
    def test_injection_record_round_trip(self, recovery_campaign):
        _, rec_report, _, _ = recovery_campaign
        recovered = next(r for r in rec_report.results if r.outcome == "Recovered")
        record = recovered.as_record()
        assert record["recovery_rollbacks"] >= 1
        assert record["recovery_escalated"] is False
        back = InjectionResult.from_record(record)
        assert back.recovery == recovered.recovery

    def test_recless_records_have_no_recovery_keys(self, recovery_campaign):
        twin_report, _, _, _ = recovery_campaign
        for result in twin_report.results:
            record = result.as_record()
            assert not any(key.startswith("recovery_") for key in record)

    def test_report_payload_round_trip(self, recovery_campaign):
        twin_report, rec_report, _, _ = recovery_campaign
        back = ScenarioReport.from_payload(rec_report.to_payload())
        assert back.recovery == rec_report.recovery
        assert back.counts == rec_report.counts
        assert "recovery" not in twin_report.to_payload()
        assert ScenarioReport.from_payload(twin_report.to_payload()).recovery is None

    def test_legacy_payload_without_recovery_key_loads(self, recovery_campaign):
        # A store written before the recovery PR has no "recovery" key
        # anywhere; loading must not invent one.
        twin_report, _, _, _ = recovery_campaign
        payload = twin_report.to_payload()
        assert "recovery" not in payload
        legacy = ScenarioReport.from_payload(payload)
        assert legacy.recovery is None

    def test_summary_record_flat_keys_only_for_recovery(self, recovery_campaign):
        twin_report, rec_report, _, _ = recovery_campaign
        rec_record = rec_report.as_record()
        assert rec_record["recovery_retries"] == DEFAULT_RECOVERY_RETRIES
        assert rec_record["recovery_rollbacks"] >= rec_record["recovery_escalations"]
        assert not any(k.startswith("recovery_") for k in twin_report.as_record())


# ---------------------------------------------------------------------------
# analysis tables
# ---------------------------------------------------------------------------


class TestRecoveryTables:
    def _database(self, recovery_campaign):
        twin_report, rec_report, _, _ = recovery_campaign
        database = ResultsDatabase()
        database.add_report(twin_report)
        database.add_report(rec_report)
        return database

    def test_recovery_rows_pair_the_twin(self, recovery_campaign):
        database = self._database(recovery_campaign)
        rows = recovery_rows(database)
        assert len(rows) == 1
        row = rows[0]
        assert row["hardening"] == "dwc+rec"
        assert row["recovered"] > 0
        assert row["recovered_pct"] > 0.0
        assert row["twin_detected_pct"] > row["detected_pct"]
        assert row["rollbacks"] >= row["recovered"]
        assert row["reexecuted_instructions"] > 0
        assert 0.0 < row["reexec_overhead_x"] < 1.0
        assert "rollback" in render_recovery_table(database)

    def test_recovery_rows_empty_on_legacy_store(self, recovery_campaign):
        twin_report, _, _, _ = recovery_campaign
        database = ResultsDatabase()
        database.add_report(twin_report)
        assert recovery_rows(database) == []
        assert "no recovery scenarios" in render_recovery_table(database)

    def test_hardening_table_surfaces_recovered_counts(self, recovery_campaign):
        database = self._database(recovery_campaign)
        by_scheme = {row["hardening"]: row for row in hardening_rows(database)}
        assert by_scheme["dwc+rec"]["recovered"] > 0
        # legacy (pre-recovery) aggregates render 0, never KeyError
        assert by_scheme["dwc"]["recovered"] == 0


# ---------------------------------------------------------------------------
# the acceptance campaign: 2 ISAs x {serial, omp} x {dwc, dwc+rec}
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recovery_sweep(tmp_path_factory):
    suite = ScenarioSuite(
        [Scenario("IS", "serial", 1, isa) for isa in ("armv7", "armv8")]
        + [Scenario("IS", "omp", 2, isa) for isa in ("armv7", "armv8")]
    ).sweep_hardenings(["dwc", "dwc+rec"])
    store_dir = tmp_path_factory.mktemp("recovery-store")
    config = CampaignConfig(faults_per_scenario=150, seed=SEED, checkpoint_interval=1000)
    runner = CampaignRunner(config, workers=0)
    database = runner.run_suite(suite, store=CampaignStore(store_dir), resume=False)
    return suite, store_dir, config, database


class TestRecoveryAcceptanceSweep:
    def test_matrix_completes(self, recovery_sweep):
        suite, _store, _config, database = recovery_sweep
        assert len(suite) == 8  # 2 ISAs x 2 models x 2 schemes
        assert len(database) == 8
        assert not database.failures

    def test_every_cell_recovers_and_strictly_reduces_detected(self, recovery_sweep):
        _suite, _store, _config, database = recovery_sweep
        by_id = {report.scenario.scenario_id: report for report in database.reports.values()}
        rec_reports = [r for r in database.reports.values() if r.recovery is not None]
        assert len(rec_reports) == 4
        for rec_report in rec_reports:
            twin_id = rec_report.scenario.with_hardening("dwc").scenario_id
            twin = by_id[twin_id]
            assert rec_report.counts.get("Recovered", 0) > 0, twin_id
            assert (
                rec_report.counts.get("Detected", 0) < twin.counts.get("Detected", 0)
            ), twin_id

    def test_walkback_escalation_exercised(self, recovery_sweep):
        _suite, _store, _config, database = recovery_sweep
        recovery = [r.recovery for r in database.reports.values() if r.recovery is not None]
        assert sum(meta["multi_retry_injections"] for meta in recovery) >= 1
        assert sum(meta["escalations"] for meta in recovery) >= 1

    def test_resume_is_bit_identical(self, recovery_sweep):
        suite, store_dir, config, database = recovery_sweep
        resumed = CampaignRunner(config, workers=0).run_suite(
            suite, store=CampaignStore(store_dir), resume=True
        )
        assert campaign_fingerprint(resumed) == campaign_fingerprint(database)

    def test_leased_driver_is_bit_identical(self, recovery_sweep, tmp_path):
        suite, _store, config, database = recovery_sweep
        leased = CampaignRunner(config, workers=0).run_leased(
            suite, store=CampaignStore(tmp_path / "leased"), owner="w-acceptance"
        )
        assert campaign_fingerprint(leased) == campaign_fingerprint(database)

    def test_pooled_driver_is_bit_identical(self, recovery_sweep):
        _suite, _store, config, database = recovery_sweep
        subset = [
            Scenario("IS", "serial", 1, "armv8", hardening="dwc"),
            Scenario("IS", "serial", 1, "armv8", hardening="dwc+rec"),
        ]
        pooled = CampaignRunner(config, workers=2).run_suite(subset)
        reference = ResultsDatabase()
        for scenario in subset:
            reference.add_report(database.reports[scenario.scenario_id])
        assert campaign_fingerprint(pooled) == campaign_fingerprint(reference)

    def test_adaptive_driver_is_deterministic_and_tracks_recovered(self, recovery_sweep):
        from repro.stats import SamplingPlan
        from repro.stats.estimators import TRACKED_RATES

        _suite, _store, config, _database = recovery_sweep
        plan = SamplingPlan(
            target_half_width=0.2,
            min_faults=32,
            max_faults=96,
            batch_size=32,
            track=TRACKED_RATES + ("Recovered",),
        )
        subset = [
            Scenario("IS", "serial", 1, "armv8", hardening="dwc"),
            Scenario("IS", "serial", 1, "armv8", hardening="dwc+rec"),
        ]
        first = CampaignRunner(config, workers=0, plan=plan).run_suite(subset)
        second = CampaignRunner(config, workers=0, plan=plan).run_suite(subset)
        assert campaign_fingerprint(first) == campaign_fingerprint(second)
        rec_id = subset[1].scenario_id
        assert "Recovered" in first.reports[rec_id].counts


class TestPreRecoveryFingerprint:
    def test_non_recovery_fingerprint_is_bit_identical_to_pre_recovery(self):
        database = ResultsDatabase()
        for isa in ("armv7", "armv8"):
            for scheme in (None, "dwc"):
                scenario = Scenario(app="IS", mode="serial", cores=1, isa=isa, hardening=scheme)
                report = ScenarioCampaign(
                    scenario, CampaignConfig(faults_per_scenario=40, seed=SEED)
                ).run()
                database.add_report(report)
        fingerprint = campaign_fingerprint(database)
        assert len(fingerprint) == PRE_RECOVERY_FINGERPRINT_LEN
        assert (
            hashlib.sha256(fingerprint.encode()).hexdigest()
            == PRE_RECOVERY_FINGERPRINT_SHA256
        )
