"""Differential and determinism tests for the pre-decoded block engine.

The engine (:mod:`repro.cpu.engine`) must be bit-identical to the seed
interpreter (``Core.step``) at every instruction boundary: architectural
state, ``CoreStats`` counters, guest output, fault type and fault PC.
These tests compare the two execution paths over randomized bare-metal
programs, full-system workloads, mid-superblock pauses, fault
injections and the watchdog contract.
"""

from __future__ import annotations

import random

import pytest

from repro.cpu import engine as block_engine
from repro.cpu.core import Core
from repro.cpu.fpu import double_to_bits
from repro.errors import AlignmentFault, GuestFault, InstructionFault, SimulatorError, WatchdogTimeout
from repro.isa.arch import ARMV7, ARMV8
from repro.isa.instructions import Cond, Instr, Op
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.main_memory import AddressSpace
from repro.npb.suite import Scenario, build_program, create_system, launch_scenario

DATA_BASE = 0x1000
DATA_SIZE = 0x800


def bare_core(arch=ARMV8, use_engine=True):
    core = Core(0, arch, caches=None, model_caches=False, use_engine=use_engine)
    space = AddressSpace("bare")
    space.map("data", DATA_BASE, DATA_SIZE)
    core.mem = space
    core.text_base = 0
    core.pc = 0
    return core


#: Deliberately tiny caches so the random programs exercise evictions,
#: set conflicts and L2 traffic within a few hundred instructions.
SMALL_CACHE_CONFIGS = {
    "l1i": CacheConfig("l1i", 256, 2, 64, hit_latency=1, miss_penalty=10),
    "l1d": CacheConfig("l1d", 256, 2, 64, hit_latency=2, miss_penalty=10),
    "l2": CacheConfig("l2", 1024, 4, 64, hit_latency=12, miss_penalty=80),
}


def cached_core(arch=ARMV8, use_engine=True):
    """A bare core with cache modelling on (private tiny hierarchy)."""
    core = Core(
        0,
        arch,
        caches=CacheHierarchy.build(configs=SMALL_CACHE_CONFIGS),
        model_caches=True,
        use_engine=use_engine,
    )
    space = AddressSpace("bare")
    space.map("data", DATA_BASE, DATA_SIZE)
    core.mem = space
    core.text_base = 0
    core.pc = 0
    return core


# ---------------------------------------------------------------------------
# randomized differential: engine vs reference interpreter on bare cores
# ---------------------------------------------------------------------------

_INT3 = [Op.ADD, Op.SUB, Op.RSB, Op.MUL, Op.MULHU, Op.UDIV, Op.SDIV, Op.AND,
         Op.ORR, Op.EOR, Op.BIC, Op.LSL, Op.LSR, Op.ASR]
_INTI = [Op.ADDI, Op.SUBI, Op.ANDI, Op.ORRI, Op.EORI, Op.LSLI, Op.LSRI, Op.ASRI, Op.MULI]
_FP3 = [Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX]
_FP1 = [Op.FSQRT, Op.FNEG, Op.FABS, Op.FMOV]
_CONDS = list(Cond)


def random_program(rng: random.Random, arch, length: int = 120) -> list[Instr]:
    """A random but mostly-valid program with loops, memory and branches.

    Register 1 holds a mapped data pointer; branch targets may point
    anywhere in the text (including backwards — loops feed the engine's
    hot compile tier).  Occasional wild memory accesses exercise the
    fault-parity paths.
    """
    data_regs = (0, 2, 3, 4, 5)
    instrs: list[Instr] = [Instr(Op.MOVI, rd=1, imm=DATA_BASE + 0x200)]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.30:
            op = rng.choice(_INT3)
            instrs.append(Instr(op, rd=rng.choice(data_regs), rn=rng.choice(data_regs),
                                rm=rng.choice(data_regs)))
        elif roll < 0.48:
            op = rng.choice(_INTI)
            instrs.append(Instr(op, rd=rng.choice(data_regs), rn=rng.choice(data_regs),
                                imm=rng.randint(-64, 64)))
        elif roll < 0.56:
            instrs.append(Instr(Op.MOVI, rd=rng.choice(data_regs),
                                imm=rng.randint(-(1 << 20), 1 << 20)))
        elif roll < 0.64:
            if rng.random() < 0.5:
                instrs.append(Instr(Op.CMP, rn=rng.choice(data_regs), rm=rng.choice(data_regs)))
            else:
                instrs.append(Instr(Op.CMPI, rn=rng.choice(data_regs), imm=rng.randint(-32, 32)))
            instrs.append(Instr(Op.CSET, rd=rng.choice(data_regs), cond=rng.choice(_CONDS)))
        elif roll < 0.74:
            # memory through the pointer register (rarely: a wild base)
            base = 1 if rng.random() < 0.92 else rng.choice(data_regs)
            offset = rng.randrange(-0x40, 0x40) * arch.word_bytes
            kind = rng.random()
            if arch.has_hw_float and kind < 0.2:
                foffset = rng.randrange(-0x20, 0x20) * arch.float_bytes
                fop = Op.FLDR if kind < 0.1 else Op.FSTR
                instrs.append(Instr(fop, rd=rng.randrange(0, 6), rn=base, imm=foffset))
            elif kind < 0.6:
                instrs.append(Instr(Op.LDR, rd=rng.choice(data_regs), rn=base, imm=offset))
            else:
                instrs.append(Instr(Op.STR, rd=rng.choice(data_regs), rn=base, imm=offset))
        elif roll < 0.80 and arch.has_hw_float:
            fr = rng.randrange(0, 6)
            sub = rng.random()
            if sub < 0.3:
                instrs.append(Instr(Op.FMOVI, rd=fr, imm=double_to_bits(rng.uniform(-8, 8))))
            elif sub < 0.6:
                instrs.append(Instr(rng.choice(_FP3), rd=fr, rn=rng.randrange(0, 6),
                                    rm=rng.randrange(0, 6)))
            elif sub < 0.8:
                instrs.append(Instr(rng.choice(_FP1), rd=fr, rn=rng.randrange(0, 6)))
            else:
                instrs.append(Instr(Op.FCMP, rn=rng.randrange(0, 6), rm=rng.randrange(0, 6)))
        elif roll < 0.92:
            target = rng.randrange(0, length)
            kind = rng.random()
            if kind < 0.4:
                instrs.append(Instr(Op.BCC, cond=rng.choice(_CONDS), imm=target))
            elif kind < 0.7:
                instrs.append(Instr(Op.CBNZ, rn=rng.choice(data_regs), imm=target))
            elif kind < 0.9:
                instrs.append(Instr(Op.CBZ, rn=rng.choice(data_regs), imm=target))
            else:
                instrs.append(Instr(Op.B, imm=target))
        elif roll < 0.97:
            instrs.append(Instr(rng.choice([Op.NOP, Op.WFI, Op.MOV, Op.MVN, Op.TST]),
                                rd=rng.choice(data_regs), rn=rng.choice(data_regs),
                                rm=rng.choice(data_regs)))
        else:
            instrs.append(Instr(Op.HALT))
    instrs.append(Instr(Op.HALT))
    return instrs


def _state(core: Core):
    return core.architectural_state(), core.stats.counters(), bytes(core.mem.segments[0].data)


def _full_state(core: Core):
    """Architectural state plus the complete cache state, if modelled."""
    if core.caches is None:
        return _state(core)
    hierarchy = core.caches
    return (
        _state(core),
        hierarchy.l1i.dump_state(),
        hierarchy.l1d.dump_state(),
        hierarchy.l2.dump_state(),
    )


def _run_reference(text, arch, steps: int, factory=bare_core):
    """Interpreter reference: plain step() loop, faults captured."""
    core = factory(arch, use_engine=False)
    core.text = text
    error = None
    executed = 0
    try:
        for _ in range(steps):
            core.step()
            executed += 1
    except Exception as exc:  # noqa: BLE001 — compared against the engine's
        error = exc
    return core, executed, error


def _run_engine(text, arch, steps: int, rng: random.Random, factory=bare_core):
    """Engine run in random-size bursts (exercises mid-block resume)."""
    core = factory(arch, use_engine=True)
    core.text = text
    error = None
    executed = 0
    try:
        while executed < steps:
            chunk = min(rng.randint(1, 23), steps - executed)
            done = core.run_burst(chunk)
            executed += done
            assert done == chunk  # bare cores have no thread to detach
    except Exception as exc:  # noqa: BLE001
        executed = core.stats.instructions
        error = exc
    return core, executed, error


@pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
@pytest.mark.parametrize("seed", range(20))
def test_random_programs_bit_identical(arch, seed):
    rng = random.Random(1000 * seed + (0 if arch is ARMV7 else 1))
    text = random_program(rng, arch)
    steps = 700
    ref_core, ref_executed, ref_error = _run_reference(list(text), arch, steps)
    eng_core, eng_executed, eng_error = _run_engine(list(text), arch, steps, rng)
    assert type(eng_error) is type(ref_error), (ref_error, eng_error)
    if ref_error is not None:
        assert str(eng_error) == str(ref_error)
    assert eng_executed == ref_executed
    assert _state(eng_core) == _state(ref_core)


@pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
def test_random_programs_compiled_tier(arch, monkeypatch):
    """Force immediate superblock compilation and re-run the differential."""
    monkeypatch.setattr(block_engine, "_COMPILE_THRESHOLD", 1)
    for seed in range(8):
        rng = random.Random(5000 + seed)
        text = random_program(rng, arch)
        ref_core, ref_executed, ref_error = _run_reference(list(text), arch, 700)
        eng_core, eng_executed, eng_error = _run_engine(list(text), arch, 700, rng)
        assert type(eng_error) is type(ref_error)
        assert eng_executed == ref_executed
        assert _state(eng_core) == _state(ref_core)


def test_engine_pause_at_every_boundary_matches_interpreter():
    """run_burst(k) then run_burst(rest) equals a straight interpreter run."""
    rng = random.Random(42)
    text = random_program(rng, ARMV8, length=60)
    total = 300
    reference, _, _ = _run_reference(list(text), ARMV8, total)
    expected = _state(reference)
    for k in range(0, total + 1, 7):
        core = bare_core(ARMV8, use_engine=True)
        core.text = list(text)
        assert core.run_burst(k) == k
        assert core.stats.instructions == k  # exact boundary, mid-superblock
        assert core.run_burst(total - k) == total - k
        assert _state(core) == expected


# ---------------------------------------------------------------------------
# cache-modelling differential: every tier vs the interpreter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
@pytest.mark.parametrize("seed", range(10))
def test_random_programs_with_caches_bit_identical(arch, seed):
    """Randomized differential with cache modelling on: architectural
    state, counters, memory AND full cache state (residency in LRU
    order, dirty lines, counters) must be bit-identical."""
    rng = random.Random(7000 * seed + (0 if arch is ARMV7 else 1))
    text = random_program(rng, arch)
    steps = 700
    ref_core, ref_executed, ref_error = _run_reference(list(text), arch, steps, cached_core)
    eng_core, eng_executed, eng_error = _run_engine(list(text), arch, steps, rng, cached_core)
    assert type(eng_error) is type(ref_error), (ref_error, eng_error)
    if ref_error is not None:
        assert str(eng_error) == str(ref_error)
    assert eng_executed == ref_executed
    assert _full_state(eng_core) == _full_state(ref_core)


@pytest.mark.parametrize("arch", [ARMV7, ARMV8], ids=["armv7", "armv8"])
def test_random_programs_with_caches_compiled_tier(arch, monkeypatch):
    """Force immediate superblock compilation on the cached tier."""
    monkeypatch.setattr(block_engine, "_COMPILE_THRESHOLD", 1)
    compiled_blocks = 0
    for seed in range(6):
        rng = random.Random(9000 + seed)
        text = random_program(rng, arch)
        ref_core, ref_executed, ref_error = _run_reference(list(text), arch, 700, cached_core)
        eng_core, eng_executed, eng_error = _run_engine(list(text), arch, 700, rng, cached_core)
        assert type(eng_error) is type(ref_error)
        assert eng_executed == ref_executed
        assert _full_state(eng_core) == _full_state(ref_core)
        if eng_core._decoded is not None:
            compiled_blocks += sum(
                1 for block in eng_core._decoded.entries if block.compiled is not None
            )
    # the cached configuration must actually reach the fused tier —
    # a silent fallback to step closures would pass the differential
    # while losing the whole point of this path
    assert compiled_blocks > 0


def test_engine_pause_at_every_boundary_with_caches():
    """Pause/resume mid-superblock with caches on: the deopt stepping
    tier and the fused cached tier must agree at every boundary."""
    rng = random.Random(43)
    text = random_program(rng, ARMV8, length=60)
    total = 300
    reference, _, _ = _run_reference(list(text), ARMV8, total, cached_core)
    expected = _full_state(reference)
    for k in range(0, total + 1, 7):
        core = cached_core(ARMV8, use_engine=True)
        core.text = list(text)
        assert core.run_burst(k) == k
        assert core.stats.instructions == k  # exact boundary, mid-superblock
        assert core.run_burst(total - k) == total - k
        assert _full_state(core) == expected


# ---------------------------------------------------------------------------
# fault parity on the engine path
# ---------------------------------------------------------------------------

class TestFaultParity:
    def _both(self, text, arch=ARMV8, steps=50):
        ref = _run_reference(list(text), arch, steps)
        eng = _run_engine(list(text), arch, steps, random.Random(7))
        return ref, eng

    def _assert_parity(self, text, expected_type, arch=ARMV8):
        (ref_core, ref_exec, ref_err), (eng_core, eng_exec, eng_err) = self._both(text, arch)
        assert type(ref_err) is expected_type
        assert type(eng_err) is expected_type
        assert str(eng_err) == str(ref_err)
        assert eng_exec == ref_exec
        assert _state(eng_core) == _state(ref_core)

    def test_fetch_outside_text(self):
        self._assert_parity([Instr(Op.NOP), Instr(Op.B, imm=100)], InstructionFault)

    def test_fall_off_end_of_text(self):
        self._assert_parity([Instr(Op.MOVI, rd=2, imm=3), Instr(Op.NOP)], InstructionFault)

    def test_unmapped_load_mid_block(self):
        text = [
            Instr(Op.MOVI, rd=2, imm=9),
            Instr(Op.MOVI, rd=3, imm=0x800000),
            Instr(Op.ADDI, rd=2, rn=2, imm=1),
            Instr(Op.LDR, rd=4, rn=3, imm=0),
            Instr(Op.MOVI, rd=5, imm=1),  # never executes
            Instr(Op.HALT),
        ]
        (ref_core, _, ref_err), (eng_core, _, eng_err) = self._both(text)
        assert isinstance(ref_err, GuestFault) and isinstance(eng_err, GuestFault)
        assert str(eng_err) == str(ref_err)
        # the faulting instruction's PC advance and fetch cycle committed
        assert eng_core.pc == ref_core.pc == 4 * 4
        assert _state(eng_core) == _state(ref_core)

    def test_misaligned_store_parity(self):
        text = [
            Instr(Op.MOVI, rd=1, imm=DATA_BASE + 2),
            Instr(Op.STR, rd=1, rn=1, imm=0),
            Instr(Op.HALT),
        ]
        self._assert_parity(text, AlignmentFault)

    def test_undefined_opcode_parity(self):
        class FakeOp(int):
            pass

        text = [Instr(Op.NOP), Instr(FakeOp(999)), Instr(Op.HALT)]
        self._assert_parity(text, InstructionFault)

    def test_svc_without_kernel_parity(self):
        text = [Instr(Op.MOVI, rd=2, imm=1), Instr(Op.SVC, imm=3), Instr(Op.HALT)]
        self._assert_parity(text, SimulatorError)

    def test_unknown_condition_parity(self):
        text = [Instr(Op.CMPI, rn=0, imm=0), Instr(Op.BCC, cond=77, imm=0), Instr(Op.HALT)]
        self._assert_parity(text, SimulatorError)


# ---------------------------------------------------------------------------
# decode cache + invalidation
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_text_mutation_requires_invalidate(self):
        text = [Instr(Op.MOVI, rd=1, imm=5), Instr(Op.HALT)]
        core = bare_core(ARMV8)
        core.text = text
        core.run(10)
        assert core.regs.read(1) == 5
        # In-place mutation of the text (e.g. a future text-segment
        # fault injection) must be announced:
        text[0] = Instr(Op.MOVI, rd=1, imm=9)
        dropped = block_engine.invalidate_text(text)
        assert dropped >= 1
        core.pc = 0
        core.halted = False
        core.run(10)
        assert core.regs.read(1) == 9

    def test_register_faults_do_not_need_invalidation(self):
        """The engine never value-specializes: flips mid-run stay exact."""
        rng = random.Random(99)
        text = random_program(rng, ARMV8, length=50)
        flips = [(10, 2, 7), (60, 0, 31), (200, 4, 3)]

        def run(use_engine):
            core = bare_core(ARMV8, use_engine=use_engine)
            core.text = list(text)
            executed = 0
            for stop, reg, bit in flips:
                core.run_burst(stop - executed)
                executed = stop
                core.regs.flip_bit(reg, bit)
                core.invalidate_decode()  # the injector's barrier
            core.run_burst(300 - executed)
            return _state(core)

        assert run(True) == run(False)

    def test_evicted_decode_entries_go_stale(self):
        """Eviction must not orphan a core's decoded reference: after the
        entry leaves the LRU, invalidate_text can no longer reach it, so
        eviction itself marks it stale and the core re-decodes."""
        text = [Instr(Op.MOVI, rd=1, imm=5), Instr(Op.HALT)]
        core = bare_core(ARMV8)
        core.text = text
        core.run(10)
        assert core.regs.read(1) == 5
        held = core._decoded
        for i in range(block_engine.decode_cache_info()["capacity"] + 1):
            filler = [Instr(Op.MOVI, rd=1, imm=i), Instr(Op.HALT)]
            block_engine.decode_text(filler, 0, ARMV8, False)
        assert held.stale  # evicted while the core still references it
        text[0] = Instr(Op.MOVI, rd=1, imm=9)
        block_engine.invalidate_text(text)  # entry already gone from the cache
        core.pc = 0
        core.halted = False
        core.run(10)
        assert core.regs.read(1) == 9

    def test_decode_cache_shared_and_bounded(self):
        info = block_engine.decode_cache_info()
        assert info["entries"] <= info["capacity"]
        text = [Instr(Op.NOP), Instr(Op.HALT)]
        a = bare_core(ARMV8)
        a.text = text
        a.run(5)
        b = bare_core(ARMV8)
        b.text = text
        b.run(5)
        assert a._decoded is b._decoded  # one decode per program per config


# ---------------------------------------------------------------------------
# full-system differential: both ISAs x modes x caches x trace hook
# ---------------------------------------------------------------------------

def _system_result(scenario, model_caches, engine, budget=300_000, trace=False):
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario, model_caches=model_caches, engine=engine)
    launch_scenario(system, scenario, program)
    trace_pcs = []
    if trace:
        hook = lambda core, pc: trace_pcs.append(pc)  # noqa: E731
        for core in system.cores:
            core.trace_hook = hook
    system.run(max_instructions=budget)
    return {
        "output": system.combined_output(),
        "state": system.architectural_state(),
        "stats": [core.stats.counters() for core in system.cores],
        "memory": system.memory_snapshot(),
        "total": system.total_instructions,
        "cache": system.cache_stats() if model_caches else None,
        "trace": trace_pcs,
    }


SYSTEM_CASES = [
    ("IS", "serial", 1, "armv8"),
    ("IS", "omp", 2, "armv8"),
    ("IS", "mpi", 2, "armv7"),
    ("MG", "serial", 1, "armv7"),
]


@pytest.mark.parametrize("app,mode,cores,isa", SYSTEM_CASES,
                         ids=[f"{a}-{m}-{c}-{i}" for a, m, c, i in SYSTEM_CASES])
@pytest.mark.parametrize("model_caches", [False, True], ids=["no-caches", "with-caches"])
def test_system_differential(app, mode, cores, isa, model_caches):
    scenario = Scenario(app, mode, cores, isa)
    engine_result = _system_result(scenario, model_caches, engine=True)
    interp_result = _system_result(scenario, model_caches, engine=False)
    assert engine_result == interp_result


def test_trace_hook_deopt_matches_interpreter():
    """A trace hook forces per-instruction execution with exact fetch PCs."""
    scenario = Scenario("IS", "serial", 1, "armv8")
    engine_result = _system_result(scenario, False, engine=True, trace=True)
    interp_result = _system_result(scenario, False, engine=False, trace=True)
    assert engine_result == interp_result
    assert len(engine_result["trace"]) == engine_result["total"]


# ---------------------------------------------------------------------------
# schedule-neutral pause (satellite): random stop points mid-superblock
# ---------------------------------------------------------------------------

PAUSE_CASES = [
    ("IS", "serial", 1, "armv7"),
    ("IS", "serial", 1, "armv8"),
    ("IS", "omp", 2, "armv7"),
    ("IS", "omp", 2, "armv8"),
    ("IS", "mpi", 2, "armv7"),
    ("IS", "mpi", 2, "armv8"),
]


@pytest.mark.parametrize("model_caches", [False, True], ids=["no-caches", "with-caches"])
@pytest.mark.parametrize("app,mode,cores,isa", PAUSE_CASES,
                         ids=[f"{m}-{i}" for _, m, _, i in PAUSE_CASES])
def test_pause_resume_schedule_neutral(app, mode, cores, isa, model_caches):
    scenario = Scenario(app, mode, cores, isa)
    program = build_program(app, mode, isa)

    def launch():
        system = create_system(scenario, model_caches=model_caches, engine=True)
        launch_scenario(system, scenario, program)
        return system

    def cache_state(system):
        if not model_caches:
            return None
        states = [
            (core.caches.l1i.dump_state(), core.caches.l1d.dump_state())
            for core in system.cores
        ]
        states.append(system.shared_l2.dump_state())
        return states

    straight = launch()
    assert straight.run() == "completed"
    total = straight.total_instructions

    rng = random.Random(hash((mode, isa)) & 0xFFFF)
    stops = sorted(rng.sample(range(1, total), 12))
    paused = launch()
    for stop in stops:
        assert paused.run(stop_at_instruction=stop) == "breakpoint"
        assert paused.total_instructions == stop  # exact, mid-superblock
    assert paused.run() == "completed"

    assert paused.total_instructions == total
    assert paused.combined_output() == straight.combined_output()
    assert paused.architectural_state() == straight.architectural_state()
    assert paused.memory_snapshot() == straight.memory_snapshot()
    assert [c.stats.counters() for c in paused.cores] == [
        c.stats.counters() for c in straight.cores
    ]
    assert cache_state(paused) == cache_state(straight)


# ---------------------------------------------------------------------------
# watchdog exactness (satellite): no overshoot at any boundary
# ---------------------------------------------------------------------------

WATCHDOG_CASES = [
    ("IS", "serial", 1, "armv8", 9_999),
    ("IS", "serial", 1, "armv8", 10_000),   # burst boundary
    ("IS", "serial", 1, "armv8", 10_001),
    ("IS", "omp", 4, "armv8", 20_007),      # multi-core, mid-burst
    ("IS", "mpi", 2, "armv7", 30_100),      # multi-core, burst boundary
]


@pytest.mark.parametrize("engine", [True, False], ids=["engine", "interp"])
@pytest.mark.parametrize("app,mode,cores,isa,limit", WATCHDOG_CASES,
                         ids=[f"{m}-{c}c-{n}" for _, m, c, _, n in WATCHDOG_CASES])
def test_watchdog_executed_exact(app, mode, cores, isa, limit, engine):
    scenario = Scenario(app, mode, cores, isa)
    program = build_program(app, mode, isa)
    system = create_system(scenario, model_caches=False, engine=engine)
    launch_scenario(system, scenario, program)
    with pytest.raises(WatchdogTimeout) as excinfo:
        system.run(max_instructions=limit)
    assert excinfo.value.executed == limit
    assert system.total_instructions == limit


def test_watchdog_overshoot_engine_matches_interpreter():
    """Both paths stop on the same instruction with the same state."""
    scenario = Scenario("IS", "omp", 4, "armv8")
    program = build_program("IS", "omp", "armv8")
    states = []
    for engine in (True, False):
        system = create_system(scenario, model_caches=False, engine=engine)
        launch_scenario(system, scenario, program)
        with pytest.raises(WatchdogTimeout):
            system.run(max_instructions=23_456)
        states.append(
            (system.total_instructions, system.architectural_state(),
             [c.stats.counters() for c in system.cores])
        )
    assert states[0] == states[1]


# ---------------------------------------------------------------------------
# slow-path micro-structure (satellite: table dispatch)
# ---------------------------------------------------------------------------

class TestDispatchTables:
    def test_dispatch_table_covers_every_opcode(self):
        from repro.cpu.core import _DISPATCH, _DISPATCH_TABLE
        for op in Op:
            assert _DISPATCH_TABLE[op] is _DISPATCH[op]

    def test_condition_table_matches_flag_semantics(self):
        core = bare_core(ARMV8, use_engine=False)
        for n in (False, True):
            for z in (False, True):
                for c in (False, True):
                    for v in (False, True):
                        core.flag_n, core.flag_z, core.flag_c, core.flag_v = n, z, c, v
                        assert core.condition_holds(Cond.EQ) == z
                        assert core.condition_holds(Cond.NE) == (not z)
                        assert core.condition_holds(Cond.LT) == (n != v)
                        assert core.condition_holds(Cond.GE) == (n == v)
                        assert core.condition_holds(Cond.GT) == ((not z) and n == v)
                        assert core.condition_holds(Cond.LE) == (z or n != v)
                        assert core.condition_holds(Cond.LO) == (not c)
                        assert core.condition_holds(Cond.HS) == c
                        assert core.condition_holds(Cond.MI) == n
                        assert core.condition_holds(Cond.PL) == (not n)
                        assert core.condition_holds(Cond.AL) is True

    def test_condition_table_rejects_unknown(self):
        core = bare_core(ARMV8, use_engine=False)
        with pytest.raises(SimulatorError):
            core.condition_holds(77)
        with pytest.raises(SimulatorError):
            core.condition_holds(None)
