"""Tests of the guest software floating point library (v7 backend).

The library is exercised by compiling small MiniC programs for the v7
architecture and comparing the printed results against numpy float32
arithmetic, including property-based comparisons over random operand
pairs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import ast
from repro.compiler.ast import ExprStmt, Function, Module, Return, assign, call, var
from repro.compiler.linker import link
from repro.isa.arch import ARMV7
from repro.runtime import runtime_modules
from repro.soc.multicore import build_system

#: relative tolerance: the guest library truncates instead of rounding,
#: so results may differ from IEEE-754 by a few ulps.
REL_TOL = 5e-6

finite_floats = st.floats(
    min_value=9.999999682655225e-21, max_value=1.0000000200408773e+20, allow_nan=False, allow_infinity=False, width=32
).map(float)
signed_floats = st.one_of(finite_floats, finite_floats.map(lambda v: -v))


def run_float_program(body, locals_):
    main = Function(name="main", params=[("rank", ast.INT)], locals=locals_, body=body, return_type=ast.INT)
    program = link([Module("sf", [main], [])] + runtime_modules(ARMV7), ARMV7, name="sf")
    system = build_system("armv7", cores=1, model_caches=False)
    system.load_process(program, name="sf")
    system.run(max_instructions=5_000_000)
    process = system.kernel.processes[0]
    assert process.state.value == "exited", system.kernel.process_summary()
    return [float(line) for line in process.output_text().split()]


def binary_result(op, a, b):
    body = [
        assign("x", ast.FloatConst(a)),
        assign("y", ast.FloatConst(b)),
        assign("z", ast.BinOp(op, var("x", ast.FLOAT), var("y", ast.FLOAT))),
        ExprStmt(call("print_float", var("z", ast.FLOAT), type=ast.VOID)),
        Return(ast.const(0)),
    ]
    return run_float_program(body, [("x", ast.FLOAT), ("y", ast.FLOAT), ("z", ast.FLOAT)])[0]


def assert_close(result, expected):
    expected = float(expected)
    if expected == 0.0:
        assert abs(result) < 1e-30
    else:
        assert result == pytest.approx(expected, rel=REL_TOL, abs=1e-30)


class TestBasicOperations:
    @pytest.mark.parametrize("a,b", [(1.5, 2.25), (0.1, 0.2), (100.0, 0.003), (-1.5, 2.5), (3.0, -7.0)])
    def test_addition(self, a, b):
        assert_close(binary_result("+", a, b), np.float32(a) + np.float32(b))

    @pytest.mark.parametrize("a,b", [(5.5, 2.25), (0.1, 0.3), (-4.0, -8.0)])
    def test_subtraction(self, a, b):
        assert_close(binary_result("-", a, b), np.float32(a) - np.float32(b))

    @pytest.mark.parametrize("a,b", [(1.5, 2.0), (3.14159, 2.71828), (-2.5, 4.0), (1e10, 1e-10)])
    def test_multiplication(self, a, b):
        assert_close(binary_result("*", a, b), np.float32(a) * np.float32(b))

    @pytest.mark.parametrize("a,b", [(1.0, 3.0), (10.0, 4.0), (-9.0, 2.0), (7.5, -2.5)])
    def test_division(self, a, b):
        assert_close(binary_result("/", a, b), np.float32(a) / np.float32(b))

    def test_addition_with_zero(self):
        assert binary_result("+", 0.0, 1.25) == 1.25
        assert binary_result("+", 1.25, 0.0) == 1.25

    def test_multiplication_by_zero(self):
        assert binary_result("*", 0.0, 123.0) == 0.0

    def test_division_by_zero_gives_infinity(self):
        assert math.isinf(binary_result("/", 1.0, 0.0))

    def test_opposite_addition_cancels(self):
        assert binary_result("+", 5.5, -5.5) == 0.0


class TestSqrtAndConversions:
    @pytest.mark.parametrize("value", [4.0, 2.0, 0.25, 1234.5, 1e-6])
    def test_sqrt(self, value):
        body = [
            assign("x", ast.FloatConst(value)),
            assign("z", ast.fcall("sqrt", var("x", ast.FLOAT))),
            ExprStmt(call("print_float", var("z", ast.FLOAT), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        result = run_float_program(body, [("x", ast.FLOAT), ("z", ast.FLOAT)])[0]
        assert result == pytest.approx(math.sqrt(value), rel=1e-4)

    def test_sqrt_of_zero(self):
        body = [
            assign("z", ast.fcall("sqrt", ast.FloatConst(0.0))),
            ExprStmt(call("print_float", var("z", ast.FLOAT), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        assert run_float_program(body, [("z", ast.FLOAT)])[0] == 0.0

    @pytest.mark.parametrize("value", [0, 1, -1, 7, -13, 1000, 123456, -98765])
    def test_int_to_float_roundtrip(self, value):
        body = [
            assign("x", ast.int_to_float(ast.const(value))),
            assign("n", ast.float_to_int(var("x", ast.FLOAT))),
            ExprStmt(call("print_int", var("n"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        main = Function(name="main", params=[("rank", ast.INT)], locals=[("x", ast.FLOAT), ("n", ast.INT)],
                        body=body, return_type=ast.INT)
        program = link([Module("sf", [main], [])] + runtime_modules(ARMV7), ARMV7, name="sf")
        system = build_system("armv7", cores=1, model_caches=False)
        system.load_process(program, name="sf")
        system.run(max_instructions=1_000_000)
        assert int(system.combined_output().split()[0]) == value

    def test_float_to_int_truncates(self):
        body = [
            assign("n", ast.float_to_int(ast.FloatConst(3.9))),
            ExprStmt(call("print_int", var("n"), type=ast.VOID)),
            assign("n", ast.float_to_int(ast.FloatConst(-3.9))),
            ExprStmt(call("print_int", var("n"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        main = Function(name="main", params=[("rank", ast.INT)], locals=[("n", ast.INT)], body=body, return_type=ast.INT)
        program = link([Module("sf", [main], [])] + runtime_modules(ARMV7), ARMV7, name="sf")
        system = build_system("armv7", cores=1, model_caches=False)
        system.load_process(program, name="sf")
        system.run(max_instructions=1_000_000)
        assert system.combined_output().split() == ["3", "-3"]


class TestComparisons:
    @pytest.mark.parametrize("a,b,expected", [
        (1.0, 2.0, 1), (2.0, 1.0, 0), (1.5, 1.5, 0),
        (-1.0, 1.0, 1), (-2.0, -1.0, 1), (-1.0, -2.0, 0),
        (0.0, 0.0, 0),
    ])
    def test_less_than(self, a, b, expected):
        body = [
            assign("r", ast.lt(ast.FloatConst(a), ast.FloatConst(b))),
            ExprStmt(call("print_int", var("r"), type=ast.VOID)),
            Return(ast.const(0)),
        ]
        main = Function(name="main", params=[("rank", ast.INT)], locals=[("r", ast.INT)], body=body, return_type=ast.INT)
        program = link([Module("sf", [main], [])] + runtime_modules(ARMV7), ARMV7, name="sf")
        system = build_system("armv7", cores=1, model_caches=False)
        system.load_process(program, name="sf")
        system.run(max_instructions=1_000_000)
        assert int(system.combined_output().strip()) == expected


class TestPropertyBased:
    @given(signed_floats, signed_floats)
    @settings(max_examples=12, deadline=None)
    def test_addition_matches_float32(self, a, b):
        expected = float(np.float32(a) + np.float32(b))
        result = binary_result("+", a, b)
        if expected == 0.0:
            assert abs(result) < max(abs(a), abs(b)) * 1e-5 + 1e-30
        else:
            assert result == pytest.approx(expected, rel=2e-5)

    @given(signed_floats, signed_floats)
    @settings(max_examples=12, deadline=None)
    def test_multiplication_matches_float32(self, a, b):
        expected = float(np.float32(a) * np.float32(b))
        result = binary_result("*", a, b)
        if math.isinf(expected) or expected == 0.0:
            assert math.isinf(result) or result == 0.0 or abs(result) < 1e-30
        else:
            assert result == pytest.approx(expected, rel=2e-5)

    @given(signed_floats, signed_floats)
    @settings(max_examples=12, deadline=None)
    def test_division_matches_float32(self, a, b):
        expected = float(np.float32(a) / np.float32(b))
        result = binary_result("/", a, b)
        if math.isinf(expected) or expected == 0.0:
            assert math.isinf(result) or abs(result) < 1e-30
        else:
            assert result == pytest.approx(expected, rel=2e-5)
