"""Unit tests for the static vulnerability analysis package.

CFG construction on pathological shapes, backward liveness against
hand-computed programs (including call summaries and flag dataflow),
and the ACE-fraction / variable-rank layer on both synthetic and real
linked programs.
"""

import pytest

from repro.isa.arch import ARMV7, ARMV8
from repro.isa.instructions import Cond, Instr, Op
from repro.isa.program import Program
from repro.npb.suite import build_program
from repro.staticlint import (
    analyze_liveness,
    build_cfg,
    build_function_cfg,
    build_program_cfg,
    register_ace_fractions,
    top_variables,
    variable_ranks,
)


def program(instrs, ranges=None, arch=ARMV8):
    return Program(
        arch=arch,
        instructions=list(instrs),
        function_ranges=ranges or {"main": (0, len(instrs))},
    )


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfgShapes:
    def test_empty_range(self):
        cfg = build_cfg([])
        assert cfg.blocks == {}
        assert cfg.reachable_from() == set()

    def test_straight_line_is_one_block(self):
        cfg = build_cfg([Instr(Op.MOVI, rd=1, imm=1), Instr(Op.ADD, rd=2, rn=1, rm=1), Instr(Op.HALT)])
        assert list(cfg.blocks) == [0]
        block = cfg.blocks[0]
        assert (block.start, block.end, block.successors) == (0, 3, ())

    def test_self_loop(self):
        # 0: B 0  — a block that is its own successor and predecessor
        cfg = build_cfg([Instr(Op.B, imm=0)])
        assert cfg.blocks[0].successors == (0,)
        assert cfg.predecessors[0] == (0,)
        assert cfg.reachable_from() == {0}

    def test_fallthrough_into_branch_target(self):
        # 0: MOVI; 1: MOVI (leader: branch target); 2: CBNZ -> 1; 3: HALT
        instrs = [
            Instr(Op.MOVI, rd=1, imm=1),
            Instr(Op.MOVI, rd=2, imm=2),
            Instr(Op.CBNZ, rn=2, imm=1),
            Instr(Op.HALT),
        ]
        cfg = build_cfg(instrs)
        assert sorted(cfg.blocks) == [0, 1, 3]
        # block 0 falls through into the branch target's block
        assert cfg.blocks[0].successors == (1,)
        assert cfg.blocks[1].successors == (1, 3)
        assert set(cfg.predecessors[1]) == {0, 1}

    def test_unreachable_after_halt(self):
        instrs = [
            Instr(Op.MOVI, rd=1, imm=1),
            Instr(Op.HALT),
            Instr(Op.MOVI, rd=2, imm=2),  # dead code
            Instr(Op.HALT),
        ]
        cfg = build_cfg(instrs)
        assert sorted(cfg.blocks) == [0, 2]
        assert cfg.blocks[0].successors == ()
        assert cfg.predecessors[2] == ()
        assert cfg.reachable_from() == {0}

    def test_conditional_successor_order_is_target_then_fallthrough(self):
        instrs = [Instr(Op.BCC, cond=Cond.NE, imm=2), Instr(Op.NOP), Instr(Op.HALT)]
        cfg = build_cfg(instrs)
        assert cfg.blocks[0].successors == (2, 1)

    def test_out_of_range_target_is_dropped(self):
        # a function-range CFG whose branch leaves the range
        instrs = [Instr(Op.NOP), Instr(Op.B, imm=5), Instr(Op.NOP)]
        cfg = build_cfg(instrs, start=0, end=2)
        assert cfg.blocks[0].successors == ()

    def test_calls_fall_through(self):
        instrs = [Instr(Op.BL, imm=3), Instr(Op.SVC, imm=1), Instr(Op.HALT), Instr(Op.RET)]
        cfg = build_cfg(instrs)
        assert cfg.blocks[0].successors == (1,)  # BL: fallthrough only, no callee edge
        assert cfg.blocks[1].successors == (2,)  # SVC falls through
        assert cfg.blocks[3].successors == ()  # RET is an exit

    def test_block_of_and_terminator(self):
        instrs = [Instr(Op.NOP), Instr(Op.B, imm=0), Instr(Op.HALT)]
        cfg = build_cfg(instrs)
        assert cfg.block_of(1).start == 0
        assert cfg.block_of(1).terminator_index == 1
        with pytest.raises(KeyError):
            build_cfg(instrs, start=0, end=2).block_of(2)

    def test_function_cfg_unknown_function(self):
        with pytest.raises(KeyError):
            build_function_cfg(program([Instr(Op.HALT)]), "nope")


@pytest.mark.parametrize("app,mode", [("IS", "serial"), ("IS", "omp"), ("CG", "serial")])
def test_cross_isa_block_boundary_agreement(app, mode):
    """Same source, same control structure: the *branch* shape of every
    function must agree between the two ISA backends.  Raw block counts
    may differ (armv7 lowers FP ops into ``BL __sf_*`` calls, and calls
    end blocks), so compare the number of jump-terminated blocks — the
    actual control-flow decisions — which codegen never changes."""

    def jump_shape(prog, name):
        cfg = build_function_cfg(prog, name)
        return sum(
            1
            for block in cfg.blocks.values()
            if prog.instructions[block.terminator_index].op
            in (Op.B, Op.BCC, Op.CBZ, Op.CBNZ)
        )

    shapes = {}
    for isa in ("armv7", "armv8"):
        prog = build_program(app, mode, isa, None)
        shapes[isa] = {
            name: jump_shape(prog, name)
            for name in prog.function_ranges
            # the armv7 softfloat library only exists on one ISA
            if not name.startswith("__sf_")
        }
    common = set(shapes["armv7"]) & set(shapes["armv8"])
    assert common  # the application functions exist on both
    for name in sorted(common):
        assert shapes["armv7"][name] == shapes["armv8"][name], name


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------


class TestLiveness:
    def test_straight_line_def_use(self):
        prog = program([
            Instr(Op.MOVI, rd=20, imm=5),
            Instr(Op.MOVI, rd=21, imm=7),
            Instr(Op.ADD, rd=22, rn=20, rm=21),
            Instr(Op.HALT),
        ])
        live = analyze_liveness(prog)
        assert not live.gpr_live(0, 20)  # defined here, dead before
        assert live.gpr_live(1, 20)
        assert live.gpr_live(2, 20) and live.gpr_live(2, 21)
        assert not live.gpr_live(3, 22)  # result never used; HALT ends all

    def test_loop_keeps_counter_live(self):
        prog = program([
            Instr(Op.MOVI, rd=20, imm=10),
            Instr(Op.SUBI, rd=20, rn=20, imm=1),
            Instr(Op.CBNZ, rn=20, imm=1),
            Instr(Op.HALT),
        ])
        live = analyze_liveness(prog)
        assert not live.gpr_live(0, 20)
        assert live.gpr_live(1, 20)  # used by the SUBI and around the back edge
        assert live.gpr_live(2, 20)

    def test_flag_dataflow_through_tst(self):
        # CMP defines NZCV; TST redefines N/Z but preserves C/V; the
        # LO branch consumes C — so C must stay live *across* the TST.
        prog = program([
            Instr(Op.CMP, rn=20, rm=21),
            Instr(Op.TST, rn=20, rm=22),
            Instr(Op.BCC, cond=Cond.LO, imm=4),
            Instr(Op.NOP),
            Instr(Op.HALT),
        ])
        live = analyze_liveness(prog)
        assert live.flag_live(1, "C") and live.flag_live(2, "C")
        assert not live.flag_live(0, "C")  # CMP defines it
        assert not live.flag_live(2, "N")  # LO never reads N

    def test_call_summary_uses_only_consumed_args(self):
        # main: MOVI r0; BL callee; ADD r20, r0, r0; HALT
        # callee: ADDI r0, r0, 1; RET
        abi = ARMV8.abi
        prog = program(
            [
                Instr(Op.MOVI, rd=0, imm=1),
                Instr(Op.BL, imm=4),
                Instr(Op.ADD, rd=20, rn=0, rm=0),
                Instr(Op.HALT),
                Instr(Op.ADDI, rd=0, rn=0, imm=1),
                Instr(Op.RET),
            ],
            ranges={"main": (0, 4), "callee": (4, 6)},
        )
        live = analyze_liveness(prog)
        assert live.gpr_live(1, 0)  # the callee consumes its argument
        assert not live.gpr_live(0, 0)  # defined at 0
        # r1 is an ABI argument register, but this callee never reads it:
        # the interprocedural summary must NOT mark it live at the call.
        assert not live.gpr_live(1, 1)
        # lr is defined by the BL and consumed by the callee's RET
        assert live.gpr_live(4, abi.lr)

    def test_indirect_call_is_conservative(self):
        prog = program([
            Instr(Op.MOVI, rd=9, imm=0),
            Instr(Op.BLR, rn=9),
            Instr(Op.HALT),
        ])
        live = analyze_liveness(prog)
        for arg in ARMV8.abi.arg_regs:
            assert live.gpr_live(1, arg), f"arg r{arg} must be live at an indirect call"

    def test_fp_liveness(self):
        prog = program([
            Instr(Op.FMOVI, rd=8, imm=0x3FF0000000000000),
            Instr(Op.FADD, rd=9, rn=8, rm=8),
            Instr(Op.HALT),
        ])
        live = analyze_liveness(prog)
        assert live.fpr_live(1, 8)
        assert not live.fpr_live(0, 8)
        assert not live.fpr_live(2, 9)

    def test_return_boundary_keeps_ret_value_live(self):
        abi = ARMV8.abi
        prog = program([
            Instr(Op.MOVI, rd=abi.ret_reg, imm=42),
            Instr(Op.RET),
        ])
        live = analyze_liveness(prog)
        assert live.gpr_live(1, abi.ret_reg)

    def test_works_on_real_programs(self):
        for isa in ("armv7", "armv8"):
            prog = build_program("IS", "serial", isa, None)
            live = analyze_liveness(prog)
            assert len(live.live_in) == len(prog.instructions)
            counts = [live.live_gpr_count(i) for i in range(len(prog.instructions))]
            assert max(counts) <= prog.arch.num_gpr
            assert max(counts) > 0


# ---------------------------------------------------------------------------
# ACE fractions and variable ranks
# ---------------------------------------------------------------------------


class TestAce:
    def _toy(self):
        return program([
            Instr(Op.MOVI, rd=20, imm=5),
            Instr(Op.MOVI, rd=21, imm=7),
            Instr(Op.ADD, rd=22, rn=20, rm=21),
            Instr(Op.HALT),
        ])

    def test_uniform_fractions(self):
        gpr, _fpr, total = register_ace_fractions(self._toy())
        assert total == 4
        assert gpr[20] == pytest.approx(2 / 4)  # live at indices 1 and 2
        assert gpr[21] == pytest.approx(1 / 4)  # live at index 2 only
        assert gpr[22] == 0.0

    def test_weighted_fractions(self):
        weights = {0: 1, 1: 1, 2: 98}  # index 3 unexecuted
        gpr, _fpr, total = register_ace_fractions(self._toy(), weights=weights)
        assert total == 100
        assert gpr[20] == pytest.approx(0.99)
        assert gpr[21] == pytest.approx(0.98)

    def test_variable_ranks_and_top(self):
        prog = self._toy()
        prog.variable_homes = {"main": {"a": ("reg", 20), "b": ("reg", 21), "s": ("stack", 0)}}
        ranks = variable_ranks(prog)
        assert ranks["main"]["a"] == 2.0
        assert ranks["main"]["b"] == 1.0
        assert ranks["main"]["s"] == 0.0  # stack-homed: register faults can't hit it
        assert top_variables(ranks, 2) == {"main": ("a", "b")}
        assert top_variables(ranks, 1) == {"main": ("a",)}

    def test_top_variables_tie_break_is_alphabetical(self):
        ranks = {"f": {"z": 1.0, "a": 1.0, "m": 1.0}}
        assert top_variables(ranks, 2) == {"f": ("a", "m")}

    def test_real_program_ranks_are_deterministic(self):
        prog = build_program("IS", "serial", "armv8", None)
        first = variable_ranks(prog)
        second = variable_ranks(prog)
        assert first == second
        assert any(score > 0 for scores in first.values() for score in scores.values())


def test_program_cfg_covers_all_text():
    prog = build_program("IS", "serial", "armv8", None)
    cfg = build_program_cfg(prog)
    covered = sorted(
        index for block in cfg.blocks.values() for index in range(block.start, block.end)
    )
    assert covered == list(range(len(prog.instructions)))
