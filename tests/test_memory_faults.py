"""Tests of the memory/cache fault dimension.

Covers the plumbing of layout-derived memory ranges from the golden run
into the fault model, the write-back-aware cache fault semantics, the
explicit not-injected outcome, and the end-to-end acceptance invariant:
a campaign with ``target_mix={"gpr": 0.6, "memory": 0.3, "cache": 0.1}``
runs on both ISAs and all three programming models, produces nonzero
memory and cache injections classified into the five outcome
categories, and is bit-reproducible given (scenario, seed, count).
"""

import pytest

from repro.analysis.target_table import (
    render_target_table,
    target_masking_matrix,
    target_masking_rows,
)
from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, summarize
from repro.injection.classify import (
    NOT_INJECTED,
    OUTCOME_ORDER,
    Outcome,
    masking_rate,
    outcome_percentages,
)
from repro.injection.fault import (
    TARGET_CACHE,
    TARGET_FPR,
    TARGET_GPR,
    TARGET_MEMORY,
    FaultDescriptor,
    FaultModel,
    normalize_memory_ranges,
)
from repro.injection.golden import GoldenRunner
from repro.injection.injector import FaultInjector
from repro.memory.cache import Cache, CacheConfig
from repro.npb.suite import Scenario, build_scenario_suite
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import JobBatcher
from repro.orchestration.runner import execute_job

#: The acceptance-criterion mix of the memory/cache fault dimension.
ACCEPTANCE_MIX = {"gpr": 0.6, "memory": 0.3, "cache": 0.1}

#: The five Cho categories — everything an *unhardened* campaign can
#: produce (Detected needs a hardened binary; see tests/test_hardening.py).
OUTCOME_VALUES = {outcome.value for outcome in OUTCOME_ORDER}


@pytest.fixture(scope="module")
def golden_cached():
    """IS serial armv8 golden run with cache modelling and checkpoints."""
    return GoldenRunner(model_caches=True, checkpoint_interval=512).run(
        Scenario("IS", "serial", 1, "armv8"), collect_stats=False
    )


@pytest.fixture(scope="module")
def golden_armv7():
    return GoldenRunner(model_caches=False).run(
        Scenario("IS", "serial", 1, "armv7"), collect_stats=False
    )


@pytest.fixture(scope="module")
def mixed_reports():
    """Mixed-target campaigns across both ISAs and all three models."""
    reports = {}
    for isa in ("armv7", "armv8"):
        for mode, cores in (("serial", 1), ("omp", 2), ("mpi", 2)):
            scenario = Scenario("IS", mode, cores, isa)
            config = CampaignConfig(faults_per_scenario=32, seed=2018, target_mix=ACCEPTANCE_MIX)
            reports[scenario.scenario_id] = ScenarioCampaign(scenario, config).run()
    return reports


class _FixedRoll:
    """Stub RNG whose roll lands beyond any float-drifted cumulative sum."""

    def random(self) -> float:
        return 1.0


class TestPickKindFallback:
    def test_overflow_roll_lands_in_the_tail(self):
        # Five equal weights: cumulative addition of the normalised 0.2s
        # drifts, and a roll beyond the accumulated total must fall into
        # the LAST kind of the mix — returning the first would silently
        # skew the distribution toward the head.
        mix = {"gpr": 0.1, "pc": 0.1, "memory": 0.1, "cache": 0.1, "fpr": 0.1}
        model = FaultModel("armv8", cores=1, target_mix=mix)
        assert model._pick_kind(_FixedRoll()) == "fpr"

    def test_zero_weight_kinds_are_dropped(self):
        # A zero-weight kind must be unreachable even through the drift
        # fallback — otherwise the per-job mix enforcement would reject a
        # fault the model itself generated.
        model = FaultModel("armv8", cores=1, target_mix={"gpr": 1.0, "cache": 0.0})
        assert "cache" not in model.target_mix
        assert model._pick_kind(_FixedRoll()) == "gpr"

    def test_adversarial_mix_generates_only_listed_kinds(self):
        mix = {"memory": 0.1, "cache": 0.1, "gpr": 0.1}
        model = FaultModel("armv8", cores=1, seed=13, target_mix=mix)
        faults = model.generate(10_000, 200, memory_ranges=[(0x1000, 0x100)])
        kinds = {fault.target_kind for fault in faults}
        assert kinds <= {"memory", "cache", "gpr"}
        # the tail kind must actually be reachable
        assert "gpr" in kinds


class TestNotInjected:
    def test_completion_before_injection_point_is_not_an_outcome(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        fault = FaultDescriptor(
            0,
            injection_time=golden_cached.total_instructions + 10,
            core_id=0,
            target_kind=TARGET_GPR,
            register_index=3,
            bit=1,
        )
        result = injector.run_one(fault)
        assert result.outcome == NOT_INJECTED
        assert "not applied" in result.detail

    def test_not_injected_excluded_from_percentages(self):
        counts = {"Vanished": 1, "UT": 1, NOT_INJECTED: 8}
        pct = outcome_percentages(counts)
        assert NOT_INJECTED not in pct
        assert pct["Vanished"] == pytest.approx(50.0)
        assert masking_rate(counts) == pytest.approx(50.0)

    def test_pre_injection_hang_is_an_error_not_a_result(self, golden_cached):
        # A watchdog expiry on the fault-free prefix means the budget is
        # broken; it must not be misfiled as "completed before injection".
        import dataclasses
        crippled = dataclasses.replace(golden_cached)
        crippled.watchdog_budget = lambda multiplier=4: 500
        injector = FaultInjector(crippled.scenario, crippled, use_checkpoints=False)
        fault = FaultDescriptor(0, injection_time=20_000, core_id=0,
                                target_kind=TARGET_GPR, register_index=3, bit=1)
        with pytest.raises(SimulatorError, match="watchdog expired"):
            injector.run_one(fault)

    def test_summary_reports_injected_count(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        beyond = golden_cached.total_instructions + 5
        faults = [
            FaultDescriptor(0, injection_time=100, core_id=0, target_kind=TARGET_GPR,
                            register_index=17, bit=0),
            FaultDescriptor(1, injection_time=beyond, core_id=0, target_kind=TARGET_GPR,
                            register_index=17, bit=0),
        ]
        report = summarize(golden_cached.scenario, golden_cached, injector.run_many(faults), 0.0)
        assert report.faults_injected == 1
        assert report.counts[NOT_INJECTED] == 1
        assert report.as_record()["count_NotInjected"] == 1
        assert sum(report.percentages.values()) == pytest.approx(100.0)


class TestFprGuard:
    def test_fpr_fault_on_archs_without_fpr_is_an_error(self, golden_armv7):
        injector = FaultInjector(golden_armv7.scenario, golden_armv7)
        fault = FaultDescriptor(0, injection_time=500, core_id=0,
                                target_kind=TARGET_FPR, register_index=0, bit=3)
        with pytest.raises(SimulatorError):
            injector.run_one(fault)


class TestMemoryRangePlumbing:
    def test_golden_records_segment_layout(self, golden_cached):
        assert len(golden_cached.memory_ranges) == len(golden_cached.process_names) == 1
        names = {name for _base, _size, name in golden_cached.memory_ranges[0]}
        assert "data" in names and "heap" in names
        assert any(name.startswith("stack") for name in names)

    def test_mpi_golden_records_per_rank_layouts(self):
        golden = GoldenRunner(model_caches=False).run(
            Scenario("IS", "mpi", 2, "armv8"), collect_stats=False
        )
        assert len(golden.memory_ranges) == 2
        per_process = golden.injectable_memory_ranges()
        assert all(ranges for ranges in per_process)

    def test_campaign_memory_faults_land_in_recorded_ranges(self, golden_cached):
        campaign = ScenarioCampaign(
            golden_cached.scenario, CampaignConfig(seed=5, target_mix={"memory": 1.0})
        )
        campaign.golden = golden_cached
        faults = campaign.build_fault_list(50)
        spans = [
            (base, base + size) for base, size, _name in golden_cached.memory_ranges[0]
        ]
        assert len(faults) == 50
        for fault in faults:
            assert fault.target_kind == TARGET_MEMORY
            assert any(lo <= fault.address < hi for lo, hi in spans)

    def test_normalize_flat_and_per_process_forms(self):
        flat = normalize_memory_ranges([(0x100, 0x10, "data"), (0x200, 0x20)], 2)
        assert flat == [[(0x100, 0x10), (0x200, 0x20)]] * 2
        nested = normalize_memory_ranges([[(0x100, 0x10)], [(0x300, 0x30)]], 2)
        assert nested == [[(0x100, 0x10)], [(0x300, 0x30)]]

    def test_empty_per_process_ranges_rejected(self):
        model = FaultModel("armv8", cores=1, seed=1, target_mix={"memory": 1.0})
        with pytest.raises(SimulatorError):
            model.generate(10_000, 5, memory_ranges=[[]], num_processes=1)


class TestCacheModel:
    def _cache(self, **overrides):
        config = dict(name="c", size_bytes=128, associativity=1, line_bytes=64)
        config.update(overrides)
        return Cache(CacheConfig(**config))

    def test_inject_on_empty_cache_is_a_miss(self):
        assert self._cache().inject_resident_fault(0, 0) is None

    def test_hit_consumes_the_corrupted_copy(self):
        cache = self._cache()
        seen = []
        cache.fault_sink = lambda line, byte, bit: seen.append((line, byte, bit))
        cache.access(0x100)
        target = cache.inject_resident_fault(7, 9)  # byte 1, bit 1 of the line
        assert target == (0x100 >> 6, 1, 1)
        cache.access(0x120)  # same 64-byte line: hit -> fault propagates
        assert seen == [(0x100 >> 6, 1, 1)]
        cache.access(0x100)  # pending cleared: no second propagation
        assert len(seen) == 1

    def test_clean_eviction_masks_the_fault(self):
        cache = self._cache()  # 2 sets x 1 way
        seen = []
        cache.fault_sink = lambda line, byte, bit: seen.append((line, byte, bit))
        cache.access(0x000)  # line 0 -> set 0, clean
        cache.inject_resident_fault(0, 3)
        cache.access(0x080)  # line 2 -> set 0: evicts clean line 0
        assert seen == []
        assert cache.dump_state()["pending"] == {}

    def test_dirty_eviction_writes_the_fault_back(self):
        cache = self._cache()
        seen = []
        cache.fault_sink = lambda line, byte, bit: seen.append((line, byte, bit))
        cache.access(0x000, write=True)  # line 0 dirty (write-allocate)
        cache.inject_resident_fault(0, 3)
        cache.access(0x080)  # evicts dirty line 0: write-back carries the flip
        assert seen == [(0, 0, 3)]

    def test_dirty_state_follows_writes(self):
        cache = self._cache()
        cache.access(0x000)
        assert not cache.is_dirty(0x000)
        cache.access(0x000, write=True)
        assert cache.is_dirty(0x000)
        cache.access(0x080)  # eviction clears dirty tracking
        assert not cache.is_dirty(0x000)

    def test_checkpoint_roundtrip_preserves_fault_state(self):
        cache = self._cache()
        cache.access(0x000, write=True)
        cache.access(0x040)
        cache.inject_resident_fault(0, 11)
        state = cache.dump_state()

        restored = self._cache()
        restored.load_state(state)
        assert restored.resident_lines() == cache.resident_lines()
        assert restored.is_dirty(0x000) and not restored.is_dirty(0x040)
        seen = []
        restored.fault_sink = lambda line, byte, bit: seen.append((line, byte, bit))
        restored.access(0x000)  # hit on the corrupted line propagates
        assert seen == [(0, 1, 3)]

    def test_flush_drops_pending_faults(self):
        cache = self._cache()
        cache.access(0x000, write=True)
        cache.inject_resident_fault(0, 0)
        cache.flush()
        assert cache.resident_lines() == []
        assert cache.dump_state()["pending"] == {}
        assert cache.dump_state()["dirty"] == []


class TestCacheFaultInjection:
    def _cache_fault(self, golden, injection_time, level="l1d", selector=0, bit=0):
        return FaultDescriptor(
            0,
            injection_time=injection_time,
            core_id=0,
            target_kind=TARGET_CACHE,
            register_index=selector,
            bit=bit,
            cache_level=level,
        )

    def test_cache_fault_runs_and_is_deterministic(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        fault = self._cache_fault(
            golden_cached, golden_cached.total_instructions // 2, selector=11, bit=100
        )
        first = injector.run_one(fault)
        second = injector.run_one(fault)
        assert first.outcome in OUTCOME_VALUES
        assert (first.outcome, first.detail, first.executed_instructions) == (
            second.outcome, second.detail, second.executed_instructions
        )

    def test_empty_l1d_reports_invalid_entry(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        result = injector.run_one(self._cache_fault(golden_cached, 1, level="l1d"))
        assert "invalid entry" in result.detail
        assert result.outcome == Outcome.VANISHED.value

    def test_restored_equals_boot_for_memory_and_cache_faults(self, golden_cached):
        campaign = ScenarioCampaign(
            golden_cached.scenario,
            CampaignConfig(seed=3, target_mix={"memory": 0.5, "cache": 0.5}),
        )
        campaign.golden = golden_cached
        faults = campaign.build_fault_list(12)
        fast = FaultInjector(golden_cached.scenario, golden_cached, use_checkpoints=True)
        slow = FaultInjector(golden_cached.scenario, golden_cached, use_checkpoints=False)
        restored = [(r.outcome, r.detail, r.executed_instructions) for r in fast.run_many(faults)]
        booted = [(r.outcome, r.detail, r.executed_instructions) for r in slow.run_many(faults)]
        assert restored == booted
        assert fast.fast_forwards == len(faults)

    def test_cache_fault_without_cache_checkpoints_falls_back_to_boot(self):
        golden = GoldenRunner(model_caches=False, checkpoint_interval=512).run(
            Scenario("IS", "serial", 1, "armv8"), collect_stats=False
        )
        injector = FaultInjector(golden.scenario, golden)
        fault = self._cache_fault(golden, golden.total_instructions // 2, selector=5, bit=8)
        result = injector.run_one(fault)
        assert result.outcome in OUTCOME_VALUES
        # cache-less checkpoints cannot seed a cache-modelling system
        assert injector.boot_replays == 1


class TestTargetedMemoryOutcomes:
    def _ranges(self, golden):
        return {name: (base, size) for base, size, name in golden.memory_ranges[0]}

    def test_padding_flip_is_output_mismatch(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        data_base, data_size = self._ranges(golden_cached)["data"]
        fault = FaultDescriptor(0, injection_time=golden_cached.total_instructions // 2,
                                core_id=0, target_kind=TARGET_MEMORY, register_index=0,
                                bit=0, address=data_base + data_size - 1)
        result = injector.run_one(fault)
        assert result.outcome == Outcome.OMM.value

    def test_dead_stack_flip_vanishes(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        ranges = self._ranges(golden_cached)
        stack_base, _size = next(v for k, v in ranges.items() if k.startswith("stack"))
        fault = FaultDescriptor(0, injection_time=golden_cached.total_instructions // 2,
                                core_id=0, target_kind=TARGET_MEMORY, register_index=0,
                                bit=0, address=stack_base)
        result = injector.run_one(fault)
        assert result.outcome == Outcome.VANISHED.value

    def test_return_address_flip_terminates_abnormally(self, golden_cached):
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        ranges = self._ranges(golden_cached)
        stack_name, (stack_base, stack_size) = next(
            (k, v) for k, v in ranges.items() if k.startswith("stack")
        )
        injection_time = golden_cached.total_instructions // 2
        system = injector._system_at(injection_time)
        system.run(max_instructions=golden_cached.watchdog_budget(),
                   stop_at_instruction=injection_time)
        core = system.cores[0]
        sp = core.regs.read(core.arch.abi.sp)
        segment = system.kernel.processes[0].address_space.segment_by_name(stack_name)
        # scan the live stack region for a saved code address
        candidates = []
        for offset in range(max(0, sp - stack_base), segment.size - 4, 4):
            word = int.from_bytes(segment.data[offset:offset + 4], "little")
            if 0x1_0000 <= word < 0x2_0000 and word % 4 == 0:
                candidates.append(stack_base + offset)
        assert candidates, "no saved return address found on the live stack"
        # flipping bit 7 of the high byte sends the return outside text
        fault = FaultDescriptor(0, injection_time=injection_time, core_id=0,
                                target_kind=TARGET_MEMORY, register_index=0,
                                bit=7, address=candidates[0] + 3)
        result = injector.run_one(fault)
        assert result.outcome in (Outcome.UT.value, Outcome.HANG.value)

    def test_unmapped_target_is_noted(self, golden_cached):
        # Thread stacks can be mapped after the injection point; the flip
        # then lands outside the live image and must not crash the run.
        injector = FaultInjector(golden_cached.scenario, golden_cached)
        ranges = self._ranges(golden_cached)
        heap_base, heap_size = ranges["heap"]
        fault = FaultDescriptor(0, injection_time=10, core_id=0,
                                target_kind=TARGET_MEMORY, register_index=0, bit=0,
                                address=heap_base + heap_size + 0x800)  # guard gap
        result = injector.run_one(fault)
        assert "unmapped at injection point" in result.detail
        assert result.outcome == Outcome.VANISHED.value


class TestMixedCampaigns:
    def test_every_scenario_injects_memory_and_cache_faults(self, mixed_reports):
        assert len(mixed_reports) == 6
        for scenario_id, report in mixed_reports.items():
            kinds = {r.fault.target_kind for r in report.results}
            assert TARGET_MEMORY in kinds, scenario_id
            assert TARGET_CACHE in kinds, scenario_id
            assert {r.outcome for r in report.results} <= OUTCOME_VALUES | {NOT_INJECTED}
            assert report.faults_injected + report.counts.get(NOT_INJECTED, 0) == 32

    def test_all_five_categories_reachable(self, mixed_reports):
        reached = set()
        for report in mixed_reports.values():
            reached |= {outcome for outcome, count in report.counts.items() if count}
        # Hang is rare under small campaigns; demonstrate it with a known
        # deterministic producer drawn from the same target-kind space
        # (a gpr fault that leaves every remaining thread blocked).
        scenario = Scenario("IS", "omp", 4, "armv7")
        golden = GoldenRunner(model_caches=False).run(scenario, collect_stats=False)
        injector = FaultInjector(scenario, golden)
        hang_fault = FaultDescriptor(0, injection_time=43208, core_id=0,
                                     target_kind=TARGET_GPR, register_index=11, bit=6)
        result = injector.run_one(hang_fault)
        assert result.outcome == Outcome.HANG.value
        reached.add(result.outcome)
        assert OUTCOME_VALUES <= reached

    def test_campaign_is_bit_reproducible(self, mixed_reports):
        scenario = Scenario("IS", "serial", 1, "armv8")
        config = CampaignConfig(faults_per_scenario=32, seed=2018, target_mix=ACCEPTANCE_MIX)
        rerun = ScenarioCampaign(scenario, config).run()
        reference = mixed_reports[scenario.scenario_id]
        assert [(r.fault, r.outcome, r.executed_instructions) for r in rerun.results] == [
            (r.fault, r.outcome, r.executed_instructions) for r in reference.results
        ]


class TestTargetMixAxis:
    def test_scenario_mix_tags_the_scenario_id(self):
        scenario = Scenario("IS", "serial", 1, "armv8").with_target_mix(ACCEPTANCE_MIX)
        assert scenario.scenario_id == "IS-SER-1-armv8-gpr0.6+memory0.3+cache0.1"
        assert scenario.target_mix_dict() == ACCEPTANCE_MIX
        assert scenario.describe()["target_mix"] == "gpr0.6+memory0.3+cache0.1"

    def test_config_level_mix_labels_the_report(self, mixed_reports):
        # The record column must reflect the mix the faults were drawn
        # from even when it was set at campaign (config) level.
        report = mixed_reports["IS-SER-1-armv8"]
        assert report.target_mix_label == "gpr0.6+memory0.3+cache0.1"
        assert report.as_record()["target_mix"] == "gpr0.6+memory0.3+cache0.1"

    def test_scenario_mix_overrides_config_mix(self):
        scenario = Scenario("IS", "serial", 1, "armv8").with_target_mix({"gpr": 1.0})
        campaign = ScenarioCampaign(scenario, CampaignConfig(target_mix={"pc": 1.0}))
        assert campaign.resolved_target_mix() == {"gpr": 1.0}

    def test_suite_sweep_opens_the_target_dimension(self):
        suite = build_scenario_suite(isas=("armv8",)).filter(apps=["IS"])
        mixed = suite.with_target_mix(ACCEPTANCE_MIX)
        assert all(s.target_mix_dict() == ACCEPTANCE_MIX for s in mixed)
        swept = suite.sweep_target_mixes([None, ACCEPTANCE_MIX])
        assert len(swept) == 2 * len(suite)
        assert len({s.scenario_id for s in swept}) == len(swept)

    def test_jobs_carry_and_enforce_the_mix(self, golden_cached):
        model = FaultModel("armv8", 1, seed=2, target_mix={"gpr": 1.0})
        faults = model.generate(golden_cached.total_instructions, 4)
        jobs = JobBatcher(faults_per_job=8).batch(
            golden_cached.scenario, golden_cached, faults, target_mix={"gpr": 1.0}
        )
        assert jobs[0].target_mix == (("gpr", 1.0),)
        assert jobs[0].describe()["target_mix"] == {"gpr": 1.0}
        results = execute_job(jobs[0])
        assert len(results) == 4
        # a fault outside the declared mix is rejected before execution
        rogue = FaultDescriptor(9, injection_time=50, core_id=0,
                                target_kind=TARGET_MEMORY, register_index=0, bit=0,
                                address=0x10_0000)
        jobs[0].faults.append(rogue)
        with pytest.raises(SimulatorError):
            execute_job(jobs[0])


class TestTargetTable:
    def test_rows_cover_the_target_classes(self, mixed_reports):
        database = ResultsDatabase()
        database.add_reports(mixed_reports.values())
        rows = target_masking_rows(database)
        targets = {(row["isa"], row["mode"], row["target"]) for row in rows}
        for isa in ("armv7", "armv8"):
            for mode in ("serial", "omp", "mpi"):
                for group in ("register", "memory", "cache"):
                    assert (isa, mode, group) in targets
        for row in rows:
            assert 0.0 <= row["masking_rate_pct"] <= 100.0
            assert row["injections"] > 0

    def test_matrix_pivots_masking_rates(self, mixed_reports):
        database = ResultsDatabase()
        database.add_reports(mixed_reports.values())
        matrix = target_masking_matrix(database)
        assert len(matrix) == 6
        for row in matrix:
            assert {"register_masking_pct", "memory_masking_pct", "cache_masking_pct"} <= set(row)

    def test_render_contains_all_dimensions(self, mixed_reports):
        database = ResultsDatabase()
        database.add_reports(mixed_reports.values())
        text = render_target_table(database)
        for token in ("register", "memory", "cache", "masking rate", "armv7", "armv8"):
            assert token in text
