"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests without installing the package (offline editable
# installs are not always possible).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.injection.campaign import ScenarioReport
from repro.injection.classify import empty_outcome_counts, masking_rate, outcome_percentages
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase


def make_report(
    app: str,
    mode: str,
    cores: int,
    isa: str,
    counts: dict[str, int],
    stats: dict[str, float] | None = None,
) -> ScenarioReport:
    """Build a synthetic ScenarioReport (no simulation involved)."""
    scenario = Scenario(app=app, mode=mode, cores=cores, isa=isa)
    full_counts = empty_outcome_counts()
    full_counts.update(counts)
    return ScenarioReport(
        scenario=scenario,
        faults_injected=sum(full_counts.values()),
        counts=full_counts,
        percentages=outcome_percentages(full_counts),
        masking_rate_pct=masking_rate(full_counts),
        golden_summary={"scenario": scenario.scenario_id, "instructions": 10_000},
        golden_stats=stats or {},
        wall_time_seconds=0.01,
        results=[],
    )


@pytest.fixture
def synthetic_database() -> ResultsDatabase:
    """A hand-built campaign database covering both ISAs and all APIs.

    The numbers are chosen so that the paper's qualitative relationships
    hold: memory-heavy scenarios have more UTs, the F*B index grows with
    the core count for IS, and MPI masks slightly more than OpenMP.
    """
    database = ResultsDatabase()
    specs = [
        # app, mode, cores, isa, counts, stats
        ("IS", "serial", 1, "armv7", {"Vanished": 60, "ONA": 15, "OMM": 5, "UT": 19, "Hang": 1},
         {"branches_total": 56e6, "function_calls_total": 22.6e6, "memory_instruction_pct": 18.0, "read_write_ratio": 0.85}),
        ("IS", "mpi", 1, "armv7", {"Vanished": 61, "ONA": 14, "OMM": 5, "UT": 19, "Hang": 1},
         {"branches_total": 56e6, "function_calls_total": 22.6e6, "memory_instruction_pct": 18.0, "read_write_ratio": 0.85}),
        ("IS", "mpi", 2, "armv7", {"Vanished": 60, "ONA": 14, "OMM": 5, "UT": 20, "Hang": 1},
         {"branches_total": 58e6, "function_calls_total": 23.1e6, "memory_instruction_pct": 19.0, "read_write_ratio": 0.83}),
        ("IS", "mpi", 4, "armv7", {"Vanished": 53, "ONA": 13, "OMM": 4, "UT": 27, "Hang": 3},
         {"branches_total": 196e6, "function_calls_total": 26.9e6, "memory_instruction_pct": 26.0, "read_write_ratio": 2.73}),
        ("IS", "omp", 1, "armv7", {"Vanished": 62, "ONA": 14, "OMM": 5, "UT": 18, "Hang": 1},
         {"branches_total": 54.1e6, "function_calls_total": 21.7e6, "memory_instruction_pct": 18.0, "read_write_ratio": 0.9}),
        ("IS", "omp", 2, "armv7", {"Vanished": 61, "ONA": 15, "OMM": 5, "UT": 18, "Hang": 1},
         {"branches_total": 54.3e6, "function_calls_total": 21.7e6, "memory_instruction_pct": 18.5, "read_write_ratio": 0.9}),
        ("IS", "omp", 4, "armv7", {"Vanished": 60, "ONA": 15, "OMM": 5, "UT": 19, "Hang": 1},
         {"branches_total": 54.7e6, "function_calls_total": 21.7e6, "memory_instruction_pct": 19.0, "read_write_ratio": 0.9}),
        ("MG", "mpi", 1, "armv7", {"Vanished": 58, "ONA": 15, "OMM": 5, "UT": 22, "Hang": 0},
         {"branches_total": 30e6, "function_calls_total": 10e6, "memory_instruction_pct": 15.8, "read_write_ratio": 1.18}),
        ("MG", "mpi", 2, "armv7", {"Vanished": 57, "ONA": 16, "OMM": 5, "UT": 22, "Hang": 0},
         {"branches_total": 31e6, "function_calls_total": 10e6, "memory_instruction_pct": 16.3, "read_write_ratio": 1.12}),
        ("MG", "mpi", 4, "armv7", {"Vanished": 50, "ONA": 15, "OMM": 5, "UT": 30, "Hang": 0},
         {"branches_total": 33e6, "function_calls_total": 11e6, "memory_instruction_pct": 22.5, "read_write_ratio": 2.83}),
        ("IS", "serial", 1, "armv8", {"Vanished": 55, "ONA": 25, "OMM": 5, "UT": 15, "Hang": 0},
         {"branches_total": 11.2e6, "function_calls_total": 2.85e6, "memory_instruction_pct": 20.0, "read_write_ratio": 1.0}),
        ("IS", "mpi", 1, "armv8", {"Vanished": 56, "ONA": 24, "OMM": 5, "UT": 15, "Hang": 0},
         {"branches_total": 11.2e6, "function_calls_total": 2.85e6, "memory_instruction_pct": 20.0, "read_write_ratio": 1.0}),
        ("IS", "mpi", 2, "armv8", {"Vanished": 54, "ONA": 24, "OMM": 5, "UT": 15, "Hang": 2},
         {"branches_total": 15.9e6, "function_calls_total": 3.35e6, "memory_instruction_pct": 21.0, "read_write_ratio": 1.0}),
        ("IS", "mpi", 4, "armv8", {"Vanished": 52, "ONA": 24, "OMM": 5, "UT": 15, "Hang": 4},
         {"branches_total": 17.6e6, "function_calls_total": 4.84e6, "memory_instruction_pct": 22.0, "read_write_ratio": 1.0}),
        ("IS", "omp", 1, "armv8", {"Vanished": 56, "ONA": 25, "OMM": 5, "UT": 14, "Hang": 0},
         {"branches_total": 7.99e6, "function_calls_total": 1.81e6, "memory_instruction_pct": 20.0, "read_write_ratio": 1.0}),
        ("IS", "omp", 2, "armv8", {"Vanished": 55, "ONA": 25, "OMM": 5, "UT": 14, "Hang": 1},
         {"branches_total": 9.05e6, "function_calls_total": 2.05e6, "memory_instruction_pct": 20.5, "read_write_ratio": 1.0}),
        ("IS", "omp", 4, "armv8", {"Vanished": 55, "ONA": 24, "OMM": 5, "UT": 15, "Hang": 1},
         {"branches_total": 9.50e6, "function_calls_total": 2.06e6, "memory_instruction_pct": 21.0, "read_write_ratio": 1.0}),
        ("LU", "omp", 1, "armv8", {"Vanished": 40, "ONA": 17, "OMM": 5, "UT": 38, "Hang": 0},
         {"memory_instruction_pct": 29.0, "read_write_ratio": 1.9, "branches_total": 5e6, "function_calls_total": 1e6}),
        ("LU", "omp", 2, "armv8", {"Vanished": 42, "ONA": 17, "OMM": 5, "UT": 36, "Hang": 0},
         {"memory_instruction_pct": 27.0, "read_write_ratio": 1.9, "branches_total": 5e6, "function_calls_total": 1e6}),
        ("LU", "omp", 4, "armv8", {"Vanished": 47, "ONA": 18, "OMM": 5, "UT": 30, "Hang": 0},
         {"memory_instruction_pct": 22.0, "read_write_ratio": 1.9, "branches_total": 5e6, "function_calls_total": 1e6}),
        ("FT", "mpi", 1, "armv8", {"Vanished": 45, "ONA": 15, "OMM": 8, "UT": 32, "Hang": 0},
         {"memory_instruction_pct": 25.7, "read_write_ratio": 1.0, "branches_total": 4e6, "function_calls_total": 1e6}),
        ("FT", "mpi", 2, "armv8", {"Vanished": 45, "ONA": 15, "OMM": 8, "UT": 32, "Hang": 0},
         {"memory_instruction_pct": 24.6, "read_write_ratio": 0.95, "branches_total": 4e6, "function_calls_total": 1e6}),
        ("FT", "mpi", 4, "armv8", {"Vanished": 46, "ONA": 15, "OMM": 8, "UT": 31, "Hang": 0},
         {"memory_instruction_pct": 23.7, "read_write_ratio": 0.95, "branches_total": 4e6, "function_calls_total": 1e6}),
        ("SP", "omp", 1, "armv8", {"Vanished": 40, "ONA": 17, "OMM": 5, "UT": 38, "Hang": 0},
         {"memory_instruction_pct": 35.1, "read_write_ratio": 1.5, "branches_total": 4e6, "function_calls_total": 1e6}),
        ("SP", "omp", 2, "armv8", {"Vanished": 42, "ONA": 17, "OMM": 5, "UT": 36, "Hang": 0},
         {"memory_instruction_pct": 34.0, "read_write_ratio": 1.5, "branches_total": 4e6, "function_calls_total": 1e6}),
        ("SP", "omp", 4, "armv8", {"Vanished": 49, "ONA": 19, "OMM": 4, "UT": 28, "Hang": 0},
         {"memory_instruction_pct": 28.5, "read_write_ratio": 1.5, "branches_total": 4e6, "function_calls_total": 1e6}),
    ]
    for app, mode, cores, isa, counts, stats in specs:
        database.add_report(make_report(app, mode, cores, isa, counts, stats))
    return database


@pytest.fixture(scope="session")
def quick_scenario():
    """The cheapest real scenario (used by integration tests)."""
    return Scenario(app="IS", mode="serial", cores=1, isa="armv8")
