"""Unit and property tests for the ALU and FPU helpers."""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import alu, fpu

WORD32 = st.integers(min_value=0, max_value=2**32 - 1)
WORD64 = st.integers(min_value=0, max_value=2**64 - 1)


class TestSignedConversion:
    @pytest.mark.parametrize("value,xlen,expected", [
        (0, 32, 0),
        (1, 32, 1),
        (0xFFFFFFFF, 32, -1),
        (0x80000000, 32, -(1 << 31)),
        (0x7FFFFFFF, 32, (1 << 31) - 1),
        (0xFFFFFFFFFFFFFFFF, 64, -1),
    ])
    def test_to_signed(self, value, xlen, expected):
        assert alu.to_signed(value, xlen) == expected

    @given(WORD32)
    def test_roundtrip_32(self, value):
        assert alu.to_unsigned(alu.to_signed(value, 32), 32) == value

    @given(WORD64)
    def test_roundtrip_64(self, value):
        assert alu.to_unsigned(alu.to_signed(value, 64), 64) == value


class TestFlags:
    @given(WORD32, WORD32)
    @settings(max_examples=200)
    def test_add_flags_match_semantics(self, a, b):
        result, n, z, c, v = alu.add_flags(a, b, 32)
        assert result == (a + b) & 0xFFFFFFFF
        assert z == (result == 0)
        assert n == bool(result >> 31)
        assert c == (a + b > 0xFFFFFFFF)
        signed = alu.to_signed(a, 32) + alu.to_signed(b, 32)
        assert v == (not (-(1 << 31) <= signed < (1 << 31)))

    @given(WORD32, WORD32)
    @settings(max_examples=200)
    def test_sub_flags_match_semantics(self, a, b):
        result, n, z, c, v = alu.sub_flags(a, b, 32)
        assert result == (a - b) & 0xFFFFFFFF
        assert c == (a >= b)
        signed = alu.to_signed(a, 32) - alu.to_signed(b, 32)
        assert v == (not (-(1 << 31) <= signed < (1 << 31)))

    def test_cmp_equal_sets_zero(self):
        _, n, z, c, v = alu.sub_flags(42, 42, 32)
        assert z and c and not n and not v


class TestDivision:
    @pytest.mark.parametrize("a,b,expected", [
        (10, 3, 3),
        (7, 7, 1),
        ((-7) & 0xFFFFFFFF, 2, (-3) & 0xFFFFFFFF),
        (7, (-2) & 0xFFFFFFFF, (-3) & 0xFFFFFFFF),
        ((-7) & 0xFFFFFFFF, (-2) & 0xFFFFFFFF, 3),
    ])
    def test_signed_divide_truncates_toward_zero(self, a, b, expected):
        assert alu.signed_divide(a, b, 32) == expected

    def test_divide_by_zero_returns_zero(self):
        # ARM semantics: SDIV/UDIV by zero yield 0 rather than trapping.
        assert alu.signed_divide(123, 0, 32) == 0
        assert alu.unsigned_divide(123, 0, 32) == 0

    @given(WORD32, st.integers(min_value=1, max_value=2**32 - 1))
    def test_unsigned_divide(self, a, b):
        assert alu.unsigned_divide(a, b, 32) == a // b


class TestShiftsAndMultiply:
    @given(WORD32, WORD32)
    def test_multiply_high_unsigned(self, a, b):
        assert alu.multiply_high_unsigned(a, b, 32) == ((a * b) >> 32) & 0xFFFFFFFF

    @pytest.mark.parametrize("value,amount,expected", [
        (0x80000000, 1, 0xC0000000),
        (0x80000000, 31, 0xFFFFFFFF),
        (0x40000000, 2, 0x10000000),
        (0xFFFFFFFF, 4, 0xFFFFFFFF),
    ])
    def test_arithmetic_shift_right(self, value, amount, expected):
        assert alu.arithmetic_shift_right(value, amount, 32) == expected


class TestFpuBitConversions:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_double_roundtrip(self, value):
        assert fpu.bits_to_double(fpu.double_to_bits(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_single_roundtrip(self, value):
        assert fpu.bits_to_single(fpu.single_to_bits(value)) == value

    def test_known_bit_patterns(self):
        assert fpu.double_to_bits(1.0) == 0x3FF0000000000000
        assert fpu.single_to_bits(1.0) == 0x3F800000


class TestFpuOperations:
    def test_binary_operations(self):
        assert fpu.fp_binary("add", 1.5, 2.5) == 4.0
        assert fpu.fp_binary("sub", 1.5, 2.5) == -1.0
        assert fpu.fp_binary("mul", 3.0, 2.0) == 6.0
        assert fpu.fp_binary("div", 7.0, 2.0) == 3.5
        assert fpu.fp_binary("min", 1.0, 2.0) == 1.0
        assert fpu.fp_binary("max", 1.0, 2.0) == 2.0

    def test_divide_special_cases(self):
        assert math.isinf(fpu.fp_binary("div", 1.0, 0.0))
        assert math.isnan(fpu.fp_binary("div", 0.0, 0.0))

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            fpu.fp_binary("pow", 1.0, 2.0)

    def test_sqrt(self):
        assert fpu.fp_sqrt(9.0) == 3.0
        assert math.isnan(fpu.fp_sqrt(-1.0))

    def test_compare_flags(self):
        assert fpu.fp_compare(1.0, 1.0) == (False, True, True, False)
        assert fpu.fp_compare(1.0, 2.0) == (True, False, False, False)
        assert fpu.fp_compare(3.0, 2.0) == (False, False, True, False)
        assert fpu.fp_compare(float("nan"), 2.0) == (False, False, True, True)

    @pytest.mark.parametrize("value,xlen,expected", [
        (1.9, 32, 1),
        (-1.9, 32, (-1) & 0xFFFFFFFF),
        (float("nan"), 32, 0),
        (1e30, 32, (1 << 31) - 1),
        (-1e30, 32, 1 << 31),
    ])
    def test_float_to_int_saturates(self, value, xlen, expected):
        assert fpu.float_to_int(value, xlen) == expected
