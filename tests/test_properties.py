"""Cross-cutting property-based tests on core invariants.

These complement the per-module unit tests with invariants that must
hold for arbitrary inputs: classification totals, mismatch symmetry,
register-file bit flips, encoding determinism, fault-model bounds and
hardening-transform semantics preservation on random MiniC modules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import alu
from repro.injection.classify import (
    OUTCOME_ORDER,
    empty_outcome_counts,
    masking_rate,
    mismatch,
    outcome_percentages,
    total_mismatch,
)
from repro.injection.fault import FaultModel
from repro.isa.arch import ARMV7, ARMV8
from repro.isa.encoding import encode
from repro.isa.instructions import Instr, Op
from repro.isa.registers import RegisterFile
from repro.mining.correlation import pearson, spearman
from repro.mining.dataset import Dataset

outcome_counts = st.fixed_dictionaries(
    {outcome.value: st.integers(min_value=0, max_value=10_000) for outcome in OUTCOME_ORDER}
)


class TestClassificationProperties:
    @given(outcome_counts)
    def test_percentages_sum_to_100_or_0(self, counts):
        pct = outcome_percentages(counts)
        total = sum(pct.values())
        if sum(counts.values()) == 0:
            assert total == 0.0
        else:
            assert total == pytest.approx(100.0)

    @given(outcome_counts)
    def test_masking_rate_bounded(self, counts):
        assert 0.0 <= masking_rate(counts) <= 100.0

    @given(outcome_counts, outcome_counts)
    def test_mismatch_antisymmetric(self, a, b):
        pa, pb = outcome_percentages(a), outcome_percentages(b)
        forward = mismatch(pa, pb)
        backward = mismatch(pb, pa)
        for key in forward:
            assert forward[key] == pytest.approx(-backward[key])
        assert total_mismatch(pa, pb) == pytest.approx(total_mismatch(pb, pa))

    @given(outcome_counts)
    def test_mismatch_with_self_is_zero(self, counts):
        pct = outcome_percentages(counts)
        assert total_mismatch(pct, pct) == pytest.approx(0.0)


class TestRegisterFileProperties:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_double_flip_is_identity(self, reg, bit, value):
        regs = RegisterFile(ARMV7)
        regs.write(reg, value)
        regs.flip_bit(reg, bit)
        regs.flip_bit(reg, bit)
        assert regs.read(reg) == value

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_flip_changes_exactly_one_bit(self, reg, bit, value):
        regs = RegisterFile(ARMV8)
        regs.write(reg, value)
        regs.flip_bit(reg, bit)
        assert regs.read(reg) ^ value == 1 << bit


class TestEncodingProperties:
    ops = st.sampled_from([Op.ADD, Op.SUB, Op.LDR, Op.STR, Op.MOVI, Op.BL, Op.FADD, Op.SVC])

    @given(ops, st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_encoding_fits_32_bits_and_is_deterministic(self, op, rd, rn, imm):
        a = encode(Instr(op, rd=rd, rn=rn, imm=imm))
        b = encode(Instr(op, rd=rd, rn=rn, imm=imm))
        assert a == b
        assert 0 <= a < 2**32

    @given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=0xFFFF))
    def test_different_immediates_differ(self, imm_a, imm_b):
        if imm_a == imm_b:
            return
        a = encode(Instr(Op.MOVI, rd=1, imm=imm_a))
        b = encode(Instr(Op.MOVI, rd=1, imm=imm_b))
        assert a != b


class TestAluProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=2**32 - 1))
    def test_add_sub_roundtrip(self, a, b):
        total, *_ = alu.add_flags(a, b, 32)
        back, *_ = alu.sub_flags(total, b, 32)
        assert back == a

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=2**32 - 1))
    def test_division_remainder_identity(self, a, b):
        quotient = alu.unsigned_divide(a, b, 32)
        assert quotient * b <= a < (quotient + 1) * b


class TestFaultModelProperties:
    @given(st.integers(min_value=100, max_value=1_000_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=25)
    def test_generated_faults_within_lifespan(self, total, count):
        faults = FaultModel("armv8", cores=4, seed=3).generate(total, count)
        assert len(faults) == count
        assert all(1 <= fault.injection_time < total for fault in faults)
        assert all(0 <= fault.core_id < 4 for fault in faults)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25)
    def test_seed_determinism(self, seed):
        a = FaultModel("armv7", cores=2, seed=seed).generate(10_000, 20)
        b = FaultModel("armv7", cores=2, seed=seed).generate(10_000, 20)
        assert a == b


class TestCorrelationProperties:
    vectors = st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=3, max_size=40)

    @given(vectors)
    def test_self_correlation_is_one_or_zero(self, xs):
        value = pearson(xs, xs)
        assert value == pytest.approx(1.0) or value == 0.0  # 0.0 when variance degenerates

    @given(vectors)
    def test_correlation_bounded(self, xs):
        ys = list(reversed(xs))
        for func in (pearson, spearman):
            value = func(xs, ys)
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(vectors, st.floats(min_value=0.1, max_value=100.0), st.floats(min_value=-50.0, max_value=50.0))
    def test_pearson_invariant_to_affine_transform(self, xs, scale, shift):
        from hypothesis import assume

        mean = sum(xs) / len(xs)
        variance = sum((x - mean) ** 2 for x in xs) / len(xs)
        assume(variance > 1e-3)  # skip numerically degenerate series
        ys = [scale * x + shift for x in xs]
        assert pearson(xs, ys) == pytest.approx(1.0, abs=1e-6)


_MINIC_VARS = ("a", "b", "c")
_MINIC_OPS = ("+", "-", "*", "&", "|", "^")


def _minic_expr(depth: int):
    """Random pure integer expression over the fixed variable set."""
    from repro.compiler import ast as mc

    leaf = st.one_of(
        st.integers(min_value=-40, max_value=40).map(mc.const),
        st.sampled_from(_MINIC_VARS).map(lambda name: mc.var(name)),
    )
    if depth <= 0:
        return leaf
    sub = _minic_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_MINIC_OPS), sub, sub).map(lambda t: mc.BinOp(t[0], t[1], t[2])),
    )


def _minic_cond():
    from repro.compiler import ast as mc

    return st.tuples(
        st.sampled_from(("==", "!=", "<", "<=", ">", ">=")), _minic_expr(1), _minic_expr(1)
    ).map(lambda t: mc.BinOp(t[0], t[1], t[2]))


def _minic_stmts(depth: int, in_loop: bool):
    from repro.compiler import ast as mc

    assign_stmt = st.tuples(st.sampled_from(_MINIC_VARS), _minic_expr(2)).map(
        lambda t: mc.assign(t[0], t[1])
    )
    print_stmt = _minic_expr(2).map(lambda e: mc.ExprStmt(mc.call("print_int", e, type=mc.VOID)))
    options = [assign_stmt, print_stmt]
    if in_loop:
        # jumps guarded by a condition so loops stay interesting
        options.append(
            st.tuples(_minic_cond(), st.booleans()).map(
                lambda t: mc.If(t[0], [mc.Break() if t[1] else mc.Continue()])
            )
        )
    if depth > 0:
        inner = _minic_stmts(depth - 1, in_loop)
        options.append(st.tuples(_minic_cond(), inner, inner).map(lambda t: mc.If(t[0], t[1], t[2])))
        # one counter variable per nesting depth: a nested loop reusing
        # the outer counter could reset it and never terminate
        options.append(
            st.tuples(st.integers(min_value=1, max_value=5), _minic_stmts(depth - 1, True)).map(
                lambda t, d=depth: mc.For(f"i{d}", mc.const(0), mc.const(t[0]), t[1])
            )
        )
    return st.lists(st.one_of(options), min_size=1, max_size=4)


def _minic_module():
    """Random MiniC module: assignments, prints, ifs and counted loops."""
    from repro.compiler import ast as mc

    def build(stmts):
        body = [mc.assign(name, mc.const(index + 1)) for index, name in enumerate(_MINIC_VARS)]
        body += stmts
        body.append(mc.ExprStmt(mc.call("print_int", mc.var("a"), type=mc.VOID)))
        body.append(mc.Return(mc.const(0)))
        main = mc.Function(
            name="main",
            params=[("rank", mc.INT)],
            locals=[(name, mc.INT) for name in _MINIC_VARS]
            + [(f"i{depth}", mc.INT) for depth in (1, 2)],
            body=body,
            return_type=mc.INT,
        )
        return mc.Module("prop", [main])

    return _minic_stmts(2, False).map(build)


class TestHardeningProperties:
    """``harden_module`` on arbitrary MiniC modules (satellite of the
    software-hardening subsystem): fault-free semantics preservation on
    both ISAs and determinism of the optimise+harden pipeline."""

    @staticmethod
    def _run(program, arch) -> str:
        from repro.soc.multicore import build_system

        system = build_system(arch.name, cores=1)
        system.load_process(program, name="prop")
        system.run(max_instructions=2_000_000)
        process = system.kernel.processes[0]
        assert process.state.value == "exited", system.kernel.process_summary()
        return process.output_text()

    @given(module=_minic_module(), scheme=st.sampled_from(["dwc", "cfc", "dwc+cfc"]))
    @settings(max_examples=8, deadline=None)
    def test_harden_module_preserves_fault_free_semantics(self, module, scheme):
        from repro.compiler.linker import link
        from repro.isa.arch import ARMV7, ARMV8

        for arch in (ARMV7, ARMV8):
            baseline = link([module], arch, name="prop")
            hardened = link([module], arch, name="prop", hardening=scheme)
            assert self._run(hardened, arch) == self._run(baseline, arch)
            assert len(hardened.instructions) > len(baseline.instructions)

    @given(module=_minic_module())
    @settings(max_examples=8, deadline=None)
    def test_optimize_then_harden_is_deterministic(self, module):
        from repro.compiler.optimizer import optimize_module
        from repro.hardening import harden_module

        once = harden_module(optimize_module(module), "dwc+cfc")
        twice = harden_module(optimize_module(module), "dwc+cfc")
        assert repr(once.functions) == repr(twice.functions)
        assert repr(once.globals) == repr(twice.globals)


class TestDatasetProperties:
    records = st.lists(
        st.fixed_dictionaries({"group": st.sampled_from(["a", "b", "c"]), "value": st.integers(-100, 100)}),
        min_size=1,
        max_size=50,
    )

    @given(records)
    def test_group_by_partitions_records(self, rows):
        data = Dataset(rows)
        groups = data.group_by("group")
        assert sum(len(group) for group in groups.values()) == len(data)

    @given(records)
    def test_filter_is_subset(self, rows):
        data = Dataset(rows)
        subset = data.filter_equal(group="a")
        assert len(subset) <= len(data)
        assert all(record["group"] == "a" for record in subset)
