"""Tests for the memory subsystem: segments, permissions, caches."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentFault, MemoryFault, SimulatorError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import CORTEX_A_CACHE_CONFIG, CacheHierarchy
from repro.memory.main_memory import AddressSpace, MemorySegment, Permissions, PERM_RO, PERM_RW


def make_space() -> AddressSpace:
    space = AddressSpace("test")
    space.map("data", 0x1000, 0x1000, PERM_RW)
    space.map("rodata", 0x4000, 0x1000, PERM_RO)
    return space


class TestSegments:
    def test_contains_and_end(self):
        segment = MemorySegment("seg", 0x100, 0x80)
        assert segment.contains(0x100)
        assert segment.contains(0x17F)
        assert not segment.contains(0x180)
        assert segment.end == 0x180

    def test_invalid_geometry(self):
        with pytest.raises(SimulatorError):
            MemorySegment("bad", -1, 10)
        with pytest.raises(SimulatorError):
            MemorySegment("bad", 0, 0)

    def test_overlap_detection(self):
        space = make_space()
        with pytest.raises(SimulatorError):
            space.map("overlap", 0x1800, 0x1000)

    def test_load_image_too_large(self):
        segment = MemorySegment("seg", 0, 16)
        with pytest.raises(SimulatorError):
            segment.load_image(b"x" * 32)

    def test_snapshot_restore(self):
        segment = MemorySegment("seg", 0, 16)
        segment.load_image(b"hello")
        snap = segment.snapshot()
        segment.data[0] = 0xFF
        segment.restore(snap)
        assert bytes(segment.data[:5]) == b"hello"


class TestAddressSpace:
    def test_read_write_roundtrip(self):
        space = make_space()
        space.write(0x1008, 0xDEADBEEF, 4)
        assert space.read(0x1008, 4) == 0xDEADBEEF

    def test_little_endian_layout(self):
        space = make_space()
        space.write(0x1000, 0x01020304, 4)
        assert space.read(0x1000, 1) == 0x04
        assert space.read(0x1003, 1) == 0x01

    def test_unmapped_access_faults(self):
        space = make_space()
        with pytest.raises(MemoryFault):
            space.read(0x9000, 4)
        with pytest.raises(MemoryFault):
            space.write(0x9000, 1, 4)

    def test_negative_address_faults(self):
        space = make_space()
        with pytest.raises(MemoryFault):
            space.read(-4, 4)

    def test_write_to_readonly_faults(self):
        space = make_space()
        with pytest.raises(MemoryFault):
            space.write(0x4000, 1, 4)
        # reads are fine
        assert space.read(0x4000, 4) == 0

    def test_cross_segment_boundary_faults(self):
        space = make_space()
        with pytest.raises(MemoryFault):
            space.read_bytes(0x1FFC, 8)

    def test_misaligned_access_faults(self):
        space = make_space()
        with pytest.raises(AlignmentFault):
            space.read(0x1001, 4)
        with pytest.raises(AlignmentFault):
            space.write(0x1002, 1, 8)

    def test_byte_access_never_misaligned(self):
        space = make_space()
        space.write(0x1003, 0xAB, 1)
        assert space.read(0x1003, 1) == 0xAB

    def test_read_write_bytes(self):
        space = make_space()
        space.write_bytes(0x1100, b"abcdef")
        assert space.read_bytes(0x1100, 6) == b"abcdef"

    def test_flip_bit(self):
        space = make_space()
        space.write(0x1010, 0x00, 1)
        space.flip_bit(0x1010, 3)
        assert space.read(0x1010, 1) == 0x08
        with pytest.raises(MemoryFault):
            space.flip_bit(0x9999, 0)

    def test_flip_bit_ignores_permissions(self):
        # radiation does not respect page protections
        space = make_space()
        space.flip_bit(0x4000, 0)
        assert space.read(0x4000, 1) == 1

    def test_snapshot_diff_restore(self):
        space = make_space()
        snap = space.snapshot()
        assert list(snap) == ["data"]  # only writable segments by default
        space.write(0x1000, 77, 4)
        assert space.diff(snap) == ["data"]
        space.restore(snap)
        assert space.diff(snap) == []

    def test_injectable_ranges(self):
        space = make_space()
        ranges = space.injectable_ranges()
        assert (0x1000, 0x1000, "data") in ranges
        assert all(name != "rodata" for _, _, name in ranges)

    def test_stats_accumulate(self):
        space = make_space()
        space.write(0x1000, 1, 4)
        space.read(0x1000, 4)
        stats = space.stats()
        assert stats["reads"] == 1 and stats["writes"] == 1
        assert stats["bytes_read"] == 4 and stats["bytes_written"] == 4

    @given(st.integers(min_value=0, max_value=0xFFC), st.integers(min_value=0, max_value=2**32 - 1))
    def test_word_roundtrip_property(self, offset, value):
        space = AddressSpace("prop")
        space.map("data", 0, 0x1000)
        aligned = offset & ~3
        space.write(aligned, value, 4)
        assert space.read(aligned, 4) == value


class TestCache:
    def test_geometry(self):
        config = CacheConfig("l1", 32 * 1024, 4, 64)
        assert config.num_lines == 512
        assert config.num_sets == 128

    def test_hit_after_miss(self):
        cache = Cache(CacheConfig("c", 1024, 2, 64))
        miss_latency = cache.access(0x100)
        hit_latency = cache.access(0x100)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert hit_latency < miss_latency

    def test_same_line_is_hit(self):
        cache = Cache(CacheConfig("c", 1024, 2, 64))
        cache.access(0x100)
        cache.access(0x13C)  # same 64-byte line
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        # one set, 2 ways, 64-byte lines -> addresses 0, 1*64*sets, ... conflict
        config = CacheConfig("c", 128, 2, 64)
        cache = Cache(config)
        assert config.num_sets == 1
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x080)  # evicts 0x000
        assert cache.stats.evictions == 1
        cache.access(0x000)
        assert cache.stats.misses == 3 + 1

    def test_miss_rate_and_reset(self):
        cache = Cache(CacheConfig("c", 1024, 2, 64))
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_flush_forces_miss(self):
        cache = Cache(CacheConfig("c", 1024, 2, 64))
        cache.access(0)
        cache.flush()
        cache.access(0)
        assert cache.stats.misses == 2

    def test_next_level_consulted_on_miss(self):
        l2 = Cache(CacheConfig("l2", 4096, 4, 64))
        l1 = Cache(CacheConfig("l1", 1024, 2, 64), next_level=l2)
        l1.access(0x200)
        assert l2.stats.accesses == 1
        l1.access(0x200)
        assert l2.stats.accesses == 1  # L1 hit does not reach L2


class TestHierarchy:
    def test_paper_configuration(self):
        assert CORTEX_A_CACHE_CONFIG["l1i"].size_bytes == 32 * 1024
        assert CORTEX_A_CACHE_CONFIG["l1d"].associativity == 4
        assert CORTEX_A_CACHE_CONFIG["l2"].size_bytes == 512 * 1024
        assert CORTEX_A_CACHE_CONFIG["l2"].associativity == 8

    def test_shared_l2(self):
        shared = Cache(CORTEX_A_CACHE_CONFIG["l2"])
        a = CacheHierarchy.build(shared_l2=shared)
        b = CacheHierarchy.build(shared_l2=shared)
        a.data_access(0x8000, write=False)
        b.data_access(0x8000, write=False)
        # both L1 misses hit the same shared L2; second one is an L2 hit
        assert shared.stats.accesses == 2
        assert shared.stats.hits == 1

    def test_stats_keys(self):
        hierarchy = CacheHierarchy.build()
        hierarchy.fetch(0x100)
        stats = hierarchy.stats()
        assert "l1i_misses" in stats and "l1d_accesses" in stats
