"""ISA comparison: ARMv7 vs ARMv8 for the same application source.

Reproduces the Section 4.1 analysis at example scale: the same MiniC
source is compiled for both ISAs; the ARMv7 binary leans on the guest
software float library and therefore executes many times more
instructions, which changes its exposure to soft errors.

Run with::

    python examples/isa_comparison.py [APP]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario, build_program


def main(app: str = "CG") -> None:
    print(f"application: {app} (serial)\n")
    runner = GoldenRunner(model_caches=True)

    golden = {}
    for isa in ("armv7", "armv8"):
        scenario = Scenario(app, "serial", 1, isa)
        program = build_program(app, "serial", isa)
        golden[isa] = runner.run(scenario)
        stats = golden[isa].stats
        print(f"{isa}: text={program.summary()['instructions']} instructions, "
              f"executed={golden[isa].total_instructions}, "
              f"branches={stats['total_branch_pct']:.1f}%, "
              f"memory={stats['total_memory_instruction_pct']:.1f}%, "
              f"float={stats['total_float_pct']:.1f}%")

    ratio = golden["armv7"].total_instructions / golden["armv8"].total_instructions
    print(f"\nARMv7 / ARMv8 executed-instruction ratio: {ratio:.1f}x "
          "(the paper reports up to ~25x, driven by the software FP library)\n")

    config = CampaignConfig(faults_per_scenario=30, seed=7)
    for isa in ("armv7", "armv8"):
        report = ScenarioCampaign(Scenario(app, "serial", 1, isa), config).run()
        summary = ", ".join(f"{k}={v:.0f}%" for k, v in report.percentages.items())
        print(f"{isa} fault classification: {summary}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CG")
