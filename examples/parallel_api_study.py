"""Parallelization API study: serial vs OpenMP vs MPI reliability.

Reproduces the Section 4.2 questions at example scale for one
application: how does the choice of parallelisation library (and the
core count) shift the soft error outcome distribution, how balanced is
the work across cores, and how large is the runtime's vulnerability
window?

The campaign runs on the resilient suite engine: a persistent worker
pool, golden runs pipelined against injections, and every finished
scenario streamed into a store directory — interrupt the run and start
it again, and only the missing scenarios execute.

Run with::

    python examples/parallel_api_study.py [APP]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import CampaignConfig
from repro.injection.classify import total_mismatch
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.profiling.functional import FunctionalProfiler


def main(app: str = "IS") -> None:
    isa = "armv8"
    scenarios = [Scenario(app, "serial", 1, isa)]
    for cores in (1, 2, 4):
        scenarios.append(Scenario(app, "omp", cores, isa))
        scenarios.append(Scenario(app, "mpi", cores, isa))

    config = CampaignConfig(faults_per_scenario=40, seed=2018, keep_individual_results=False)
    runner = CampaignRunner(config, workers=4, progress=lambda m: print(f"  {m}"))
    store = CampaignStore(Path(__file__).resolve().parent / f"parallel_api_{app.lower()}.store")
    done = len(store.completed_ids())
    print(f"running campaign over {len(scenarios)} {app}/{isa} scenarios..."
          + (f" ({done} already on disk)" if done else ""))
    try:
        database = runner.run_suite(scenarios, store=store, resume=True)
    except KeyboardInterrupt:
        print("interrupted — completed scenarios are on disk; run again to continue")
        raise SystemExit(130)

    print(f"\n{'configuration':<12} {'Vanished':>9} {'ONA':>6} {'OMM':>6} {'UT':>6} {'Hang':>6} {'masking':>8}")
    for scenario in scenarios:
        report = database.get(scenario.scenario_id)
        pct = report.percentages
        print(f"{scenario.api_label:<12} {pct['Vanished']:>8.1f}% {pct['ONA']:>5.1f}% {pct['OMM']:>5.1f}% "
              f"{pct['UT']:>5.1f}% {pct['Hang']:>5.1f}% {report.masking_rate_pct:>7.1f}%")

    for cores in (2, 4):
        mpi = database.get(Scenario(app, "mpi", cores, isa).scenario_id)
        omp = database.get(Scenario(app, "omp", cores, isa).scenario_id)
        if mpi and omp:
            print(f"\nMPI-vs-OMP mismatch at {cores} cores: "
                  f"{total_mismatch(mpi.percentages, omp.percentages):.1f} percentage points")

    profiler = FunctionalProfiler()
    for mode in ("omp", "mpi"):
        profile = profiler.run(Scenario(app, mode, 4, isa))
        window = profile.vulnerability_window(api_prefixes=("omp_", "mpi_"))
        print(f"{mode.upper()} runtime vulnerability window: {100 * window:.1f}% of executed instructions")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "IS")
