"""Quickstart: golden-run one NPB scenario and inject a few faults.

Walks through the paper's four-phase workflow for a single scenario:

1. golden execution (reference behaviour),
2. fault target list (uniform random single-bit upsets),
3. fault injection runs,
4. classification summary (Vanished / ONA / OMM / UT / Hang).

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.npb.suite import Scenario


def main() -> None:
    scenario = Scenario(app="IS", mode="omp", cores=2, isa="armv8")
    print(f"scenario: {scenario.scenario_id}")

    config = CampaignConfig(faults_per_scenario=40, seed=2018)
    campaign = ScenarioCampaign(scenario, config)

    golden = campaign.run_golden()
    print(f"golden run: {golden.total_instructions} instructions, "
          f"{len(golden.process_names)} process(es), output {golden.output.strip()!r}")

    report = campaign.run()
    print(f"\ninjected {report.faults_injected} single-bit upsets:")
    for outcome, count in report.counts.items():
        print(f"  {outcome:<10} {count:>4}  ({report.percentages[outcome]:5.1f} %)")
    print(f"\nmasking rate: {report.masking_rate_pct:.1f} %")
    print(f"campaign wall time: {report.wall_time_seconds:.1f} s")


if __name__ == "__main__":
    main()
