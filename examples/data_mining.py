"""Cross-layer data mining: correlate profiling symptoms with fault outcomes.

Reproduces the Section 3.4 tool flow at example scale:

1. run a small fault-injection campaign over several scenarios,
2. join the classification results with the microarchitectural
   statistics of the golden runs (the "gem5 statistics"),
3. mine the joined dataset for the software symptoms most correlated
   with each outcome category (e.g. memory-instruction share vs UT).

Run with::

    python examples/data_mining.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import CampaignConfig
from repro.mining.correlation import rank_correlations
from repro.mining.eda import build_analysis_dataset, outcome_by
from repro.npb.suite import Scenario
from repro.orchestration.runner import CampaignRunner

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv8"),
    Scenario("IS", "mpi", 4, "armv8"),
    Scenario("EP", "serial", 1, "armv8"),
    Scenario("EP", "omp", 4, "armv8"),
    Scenario("MG", "serial", 1, "armv8"),
    Scenario("MG", "mpi", 4, "armv8"),
    Scenario("LU", "serial", 1, "armv8"),
    Scenario("LU", "omp", 4, "armv8"),
    Scenario("SP", "serial", 1, "armv8"),
    Scenario("FT", "serial", 1, "armv8"),
]

CANDIDATE_SYMPTOMS = [
    "stat_memory_instruction_pct",
    "stat_total_branch_pct",
    "stat_total_float_pct",
    "stat_read_write_ratio",
    "stat_function_calls_total",
    "stat_load_balance_pct",
    "stat_total_instructions",
]


def main() -> None:
    config = CampaignConfig(faults_per_scenario=40, seed=2018, keep_individual_results=False)
    runner = CampaignRunner(config, workers=4, progress=lambda m: print(f"  {m}"))
    print(f"running campaign over {len(SCENARIOS)} scenarios...")
    database = runner.run_suite(SCENARIOS)

    dataset = build_analysis_dataset(database)
    print(f"\nanalysis dataset: {len(dataset)} scenarios x {len(dataset.numeric_columns())} numeric parameters")

    print("\naverage outcome distribution by application:")
    for app, stats in sorted(outcome_by(dataset, "app").items()):
        print(f"  {app}: UT={stats['UT']:.1f}%  Hang={stats['Hang']:.1f}%  masking={stats['masking']:.1f}%")

    for target in ("pct_UT", "pct_Hang", "masking_rate_pct"):
        ranked = rank_correlations(dataset, target=target, candidates=CANDIDATE_SYMPTOMS, top=3)
        print(f"\nsymptoms most correlated with {target}:")
        for name, value in ranked:
            print(f"  {name:<35} r = {value:+.2f}")

    out = Path(__file__).resolve().parent / "data_mining_campaign.json"
    database.save_json(out)
    print(f"\ncampaign database written to {out}")


if __name__ == "__main__":
    main()
