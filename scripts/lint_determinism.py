#!/usr/bin/env python3
"""Determinism lint: AST checks for reproducibility hazards in src/repro.

Campaign results are fingerprinted (see
``repro.orchestration.database.campaign_fingerprint``) and must be
bit-identical across machines, interpreter invocations and
``PYTHONHASHSEED`` values.  Three hazard classes have bitten or nearly
bitten this codebase, so they are linted mechanically:

``unseeded-random``
    Module-level ``random.*`` calls (or importing its functions
    directly).  All randomness must flow through a seeded
    ``random.Random(seed)`` instance, otherwise fault lists differ per
    run.

``wall-clock``
    ``time.time``/``time.time_ns``/``datetime.now``/``datetime.utcnow``/
    ``date.today`` reads.  Wall time may only appear in the whitelisted
    lease/status modules whose fields the fingerprint strips;
    ``time.perf_counter``/``time.monotonic`` (duration measurement) are
    always fine.

``unordered-set-iteration``
    Iterating a set (literal, comprehension, ``set(...)`` call, or a
    union/intersection of them) without ``sorted(...)`` inside the
    fingerprinted result paths.  Set iteration order depends on string
    hashing, which ``PYTHONHASHSEED`` randomises — dict iteration, by
    contrast, is insertion-ordered and safe.

Usage: ``python scripts/lint_determinism.py [--root src/repro]``.
Exits 1 when findings exist, printing one ``path:line: [check] message``
per finding.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Files allowed to read the wall clock (lease expiry and status ages
#: are genuinely wall-clock concepts; their fields never reach the
#: fingerprint, which strips wall_time keys).
WALL_CLOCK_WHITELIST = {
    "orchestration/store.py",
    "service/results.py",
    "service/coordinator.py",
    "service/worker.py",
    "orchestration/logging.py",
}

#: Module prefixes whose outputs feed campaign fingerprints or compiled
#: program images: iteration order there must never depend on hashing.
FINGERPRINTED_PATHS = (
    "injection/",
    "orchestration/",
    "compiler/",
    "isa/",
    "hardening/",
    "npb/",
    "staticlint/",
)

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

_SEEDED_FACTORIES = {"Random", "SystemRandom", "seed"}


def _attribute_chain(node: ast.AST) -> tuple[str, ...]:
    """Dotted-name chain of an expression, e.g. datetime.datetime.now."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _is_set_expression(node: ast.AST) -> bool:
    """Does this expression evaluate to a set with hash-dependent order?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class Finding:
    def __init__(self, path: Path, line: int, check: str, message: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: Path, relative: str):
        self.path = path
        self.relative = relative
        self.findings: list[Finding] = []
        self.fingerprinted = relative.startswith(FINGERPRINTED_PATHS)

    def _report(self, node: ast.AST, check: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, check, message))

    # -- unseeded random -------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [alias.name for alias in node.names if alias.name not in _SEEDED_FACTORIES]
            if bad:
                self._report(
                    node, "unseeded-random",
                    f"importing {', '.join(bad)} from random: use a seeded "
                    "random.Random(seed) instance instead",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if len(chain) == 2 and chain[0] == "random" and chain[1] not in _SEEDED_FACTORIES:
            self._report(
                node, "unseeded-random",
                f"random.{chain[1]}() uses the shared unseeded generator; "
                "draw from a seeded random.Random(seed) instance",
            )
        if chain[-2:] in (tuple(pair) for pair in _WALL_CLOCK_CALLS):
            if self.relative not in WALL_CLOCK_WHITELIST:
                self._report(
                    node, "wall-clock",
                    f"{'.'.join(chain)}() reads the wall clock outside the "
                    "whitelisted lease/status modules; use time.perf_counter() "
                    "for durations or plumb a `now` parameter",
                )
        self.generic_visit(node)

    # -- unordered set iteration ----------------------------------------
    def _check_iterable(self, node: ast.AST) -> None:
        if self.fingerprinted and _is_set_expression(node):
            self._report(
                node, "unordered-set-iteration",
                "iterating a set in a fingerprinted path: iteration order "
                "depends on PYTHONHASHSEED; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def lint_file(path: Path, root: Path) -> list[Finding]:
    relative = path.relative_to(root).as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = DeterminismVisitor(path, relative)
    visitor.visit(tree)
    return visitor.findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path("src/repro"),
                        help="package directory to lint")
    args = parser.parse_args(argv)
    if not args.root.is_dir():
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for path in sorted(args.root.rglob("*.py")):
        findings.extend(lint_file(path, args.root))
    for finding in findings:
        print(finding)
    if findings:
        print(f"-- {len(findings)} determinism finding(s)", file=sys.stderr)
        return 1
    print(f"determinism lint: OK ({args.root})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
