#!/usr/bin/env python
"""CI smoke test: campaign resumability.

Runs a tiny suite against a campaign store, kills the run (a simulated
Ctrl-C raised from the progress stream) after the first scenario's
shard lands on disk, resumes it, and verifies the final database is
bit-identical — modulo wall-clock times — to an uninterrupted run of
the same suite and seed.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import campaign_fingerprint

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv8"),
    Scenario("EP", "serial", 1, "armv8"),
    Scenario("IS", "omp", 2, "armv8"),
]
CONFIG = CampaignConfig(faults_per_scenario=6, seed=2018)


def runner(progress=None) -> CampaignRunner:
    return CampaignRunner(CONFIG, workers=0, faults_per_job=3, progress=progress)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-resume-smoke-") as tmp:
        store = CampaignStore(Path(tmp) / "store")

        # Phase 1: start the suite and kill it right after the first shard.
        interrupted = []

        def kill_after_first_shard(message: str) -> None:
            if message.startswith("[suite]") and not interrupted:
                interrupted.append(message)
                raise KeyboardInterrupt

        try:
            runner(progress=kill_after_first_shard).run_suite(SCENARIOS, store=store)
        except KeyboardInterrupt:
            pass
        else:
            print("FAIL: the simulated interrupt never fired")
            return 1
        completed = store.completed_ids()
        print(f"interrupted after {len(completed)} shard(s): {sorted(completed)}")
        if completed != {SCENARIOS[0].scenario_id}:
            print("FAIL: expected exactly the first scenario's shard on disk")
            return 1

        # Phase 2: resume — only the remaining scenarios may execute.
        messages: list[str] = []
        resumed = runner(progress=messages.append).run_suite(SCENARIOS, store=store, resume=True)
        golden_runs = [m for m in messages if m.startswith("[golden]")]
        skips = [m for m in messages if m.startswith("[skip]")]
        print(f"resume: {len(skips)} shard(s) skipped, {len(golden_runs)} scenario(s) executed")
        if len(resumed) != len(SCENARIOS):
            print(f"FAIL: resumed database has {len(resumed)} reports, expected {len(SCENARIOS)}")
            return 1
        if len(skips) != 1 or len(golden_runs) != len(SCENARIOS) - 1:
            print("FAIL: resume re-executed scenarios whose shards existed")
            return 1

        # Phase 3: diff against an uninterrupted run of the same campaign.
        clean = runner().run_suite(SCENARIOS)
        if campaign_fingerprint(resumed) != campaign_fingerprint(clean):
            print("FAIL: resumed database differs from the uninterrupted run")
            return 1
        print(f"OK: resumed database is bit-identical to a clean run "
              f"({resumed.total_injections()} injections, {len(resumed)} scenarios)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
