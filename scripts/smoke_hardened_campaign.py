#!/usr/bin/env python
"""CI smoke test for the software-hardening subsystem.

Runs a tiny hardened-vs-unhardened campaign on one scenario with *the
same fault list* (drawn from the unhardened golden run, so the two
campaigns face identical upsets) and asserts the subsystem's core
claims:

* hardened fault-free golden runs produce the unhardened output (the
  transforms are semantics-preserving);
* the hardened binary detects faults (Detected > 0) and Detected never
  appears in the unhardened campaign;
* the hardened campaign shows a strictly lower OMM share than the
  unhardened baseline;
* the hardening table renders from a swept suite database.
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.hardening_table import hardening_rows, render_hardening_table
from repro.injection.fault import FaultModel
from repro.injection.golden import GoldenRunner
from repro.injection.injector import FaultInjector
from repro.npb.suite import Scenario, ScenarioSuite
from repro.orchestration import CampaignRunner

SCENARIO = Scenario("LU", "serial", 1, "armv8")
SCHEME = "dwc+cfc"
FAULTS = 150
SEED = 2018


def main() -> int:
    base = SCENARIO
    hardened = base.with_hardening(SCHEME)
    runner = GoldenRunner(model_caches=False, checkpoint_interval=None)
    golden_base = runner.run(base, collect_stats=False)
    golden_hard = runner.run(hardened, collect_stats=False)
    assert golden_hard.output == golden_base.output, "hardening changed fault-free output"
    assert golden_hard.total_instructions > golden_base.total_instructions, (
        "hardened binary should execute more instructions"
    )

    # One fault list for both campaigns: drawn over the unhardened
    # lifespan, so every injection time is valid for the (longer)
    # hardened run too.
    faults = FaultModel(base.isa, cores=base.cores, seed=SEED).generate(
        golden_base.total_instructions, FAULTS
    )
    counts_base = Counter(r.outcome for r in FaultInjector(base, golden_base).run_many(faults))
    counts_hard = Counter(
        r.outcome for r in FaultInjector(hardened, golden_hard).run_many(faults)
    )
    print(f"baseline : {dict(counts_base)}")
    print(f"hardened : {dict(counts_hard)}")

    assert counts_base["Detected"] == 0, "unhardened binary cannot detect faults"
    assert counts_hard["Detected"] > 0, "hardened campaign detected nothing"
    injected_base = sum(counts_base.values()) - counts_base["NotInjected"]
    injected_hard = sum(counts_hard.values()) - counts_hard["NotInjected"]
    omm_base = counts_base["OMM"] / injected_base
    omm_hard = counts_hard["OMM"] / injected_hard
    assert omm_hard < omm_base, (
        f"hardening did not reduce the OMM share ({omm_hard:.3f} vs {omm_base:.3f})"
    )

    # The axis end to end: a small swept suite through run_suite, and
    # the hardening table rendered from the resulting database.
    suite = ScenarioSuite([base]).sweep_hardenings([None, SCHEME])
    database = CampaignRunner(workers=0).run_suite(suite, faults=24)
    rows = hardening_rows(database)
    schemes = {row["hardening"] for row in rows}
    assert schemes == {"off", SCHEME}, f"unexpected scheme rows {schemes}"
    hardened_row = next(row for row in rows if row["hardening"] == SCHEME)
    assert hardened_row["static_overhead_x"] != "-", "static overhead missing"
    assert hardened_row["dynamic_overhead_x"] != "-", "dynamic overhead missing"
    print()
    print(render_hardening_table(database))
    print("\nsmoke_hardened_campaign: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
