#!/usr/bin/env python
"""CI smoke test: checkpoint-rollback recovery campaigns.

Two legs, both on the same small fault list (the recovery scheme's
fault stream is seeded from its rec-less twin's scenario id, so the
``dwc`` and ``dwc+rec1`` scenarios below face identical faults):

**Local leg** — runs the suite twice through the reference driver and
asserts

1. the recovery scenario ends with ``Recovered > 0`` *and* a residual
   ``Detected > 0`` (a deep-detection-latency fault exhausts the
   single-retry budget and escalates to fail-stop);
2. Detected is strictly reduced versus the rec-less twin on the same
   fault list;
3. the campaign fingerprint is bit-identical across the two runs
   (rollback and re-execution are deterministic).

**Chaos leg** — serves the same suite from a coordinator, SIGKILLs the
first worker while it holds the recovery scenario's lease (mid
rollback batch), lets a replacement worker reclaim the expired lease,
and asserts the resumed distributed database's fingerprint matches the
local reference — recovery work interrupted by a dead worker re-runs
to the exact same bits.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import campaign_fingerprint
from repro.service import CampaignCoordinator, CoordinatorClient, make_server

# 300 seed-2018 faults over IS/armv8 include both shallow-latency GPR
# faults (recover on the first rollback) and a deep-latency PC fault
# whose corrupted live snapshots defeat a single-retry budget.
REC_SCENARIO = Scenario("IS", "serial", 1, "armv8", hardening="dwc+rec1")
TWIN_SCENARIO = Scenario("IS", "serial", 1, "armv8", hardening="dwc")
# recovery scenario first so the chaos victim leases it before dying
SCENARIOS = [REC_SCENARIO, TWIN_SCENARIO]
CONFIG = CampaignConfig(faults_per_scenario=300, seed=2018, checkpoint_interval=1000)
TIMEOUT = 600.0


def spawn_worker(url: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, str(ROOT / "scripts" / "run_campaign.py"), "work",
            "--coordinator", url, "--worker-id", worker_id,
            "--workers", "0", "--poll-interval", "0.2",
        ],
        env=env,
    )


def local_leg():
    """Reference run + determinism rerun; returns the fingerprint."""
    first = CampaignRunner(CONFIG, workers=0).run_suite(SCENARIOS)
    second = CampaignRunner(CONFIG, workers=0).run_suite(SCENARIOS)

    rec = first.reports[REC_SCENARIO.scenario_id]
    twin = first.reports[TWIN_SCENARIO.scenario_id]
    recovered = rec.counts.get("Recovered", 0)
    residual = rec.counts.get("Detected", 0)
    twin_detected = twin.counts.get("Detected", 0)
    print(
        f"recovery scenario: Recovered={recovered} Detected={residual} "
        f"(twin Detected={twin_detected}); recovery={rec.recovery}"
    )
    if recovered <= 0:
        print("FAIL: no fault ended in the Recovered outcome")
        return None
    if residual <= 0:
        print("FAIL: no residual Detected — the retry budget never escalated")
        return None
    if residual >= twin_detected:
        print("FAIL: Detected was not strictly reduced versus the rec-less twin")
        return None

    reference = campaign_fingerprint(first)
    if campaign_fingerprint(second) != reference:
        print("FAIL: recovery campaign fingerprint differs across reruns")
        return None
    print("local leg OK: deterministic recovery, coverage and escalation present")
    return reference


def chaos_leg(reference) -> bool:
    """Kill a worker mid-recovery-batch; a successor must finish identically."""
    with tempfile.TemporaryDirectory(prefix="repro-recovery-smoke-") as tmp:
        coordinator = CampaignCoordinator(
            CampaignStore(Path(tmp) / "store"), SCENARIOS, CONFIG, lease_ttl=5.0
        )
        server = make_server(coordinator)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        print(f"coordinator at {url}")

        client = CoordinatorClient(url)
        victim = spawn_worker(url, "smoke-victim")
        killed = False
        deadline = time.monotonic() + TIMEOUT
        successor = None
        try:
            # Wait for the victim to hold the recovery scenario's lease,
            # give the injection batch (rollbacks included) time to be in
            # flight, then SIGKILL it mid-batch.
            while time.monotonic() < deadline and not killed:
                status = client.get("/status")
                if status["done"]:
                    break
                held = [lease["scenario_id"] for lease in status["leased"]]
                if REC_SCENARIO.scenario_id in held:
                    time.sleep(2.0)  # past the golden run, into the batch
                    victim.send_signal(signal.SIGKILL)
                    victim.wait(timeout=30)
                    killed = True
                    print(f"killed worker holding lease(s) {held}")
                time.sleep(0.05)
            if not killed:
                print("FAIL: victim worker never held a lease to be killed over")
                return False

            successor = spawn_worker(url, "smoke-successor")
            while time.monotonic() < deadline:
                status = client.get("/status")
                if status["done"]:
                    break
                time.sleep(0.5)
            else:
                print("FAIL: campaign did not complete after the chaos kill")
                return False
        finally:
            for worker in (victim, successor):
                if worker is None or worker.returncode is not None:
                    continue
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
            server.shutdown()

        if successor.returncode != 0:
            print("FAIL: successor worker exited non-zero")
            return False
        status = coordinator.status()
        if status["failures"]:
            print(f"FAIL: scenario failures recorded: {status['failures']}")
            return False
        distributed = coordinator.results.database()
        if campaign_fingerprint(distributed) != reference:
            print("FAIL: resumed distributed database differs from the local run")
            return False
        print(
            f"chaos leg OK: resumed distributed campaign is bit-identical "
            f"(grants: {status['lease_grants']})"
        )
    return True


def main() -> int:
    reference = local_leg()
    if reference is None:
        return 1
    if not chaos_leg(reference):
        return 1
    print("OK: recovery smoke passed (local determinism + chaos resume)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
