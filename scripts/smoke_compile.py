"""Developer smoke test: compile and run a tiny program on both ISAs."""

from repro.compiler import ast
from repro.compiler.linker import link
from repro.isa.arch import ARMV7, ARMV8
from repro.soc.multicore import build_system


def build_module() -> ast.Module:
    main = ast.Function(
        name="main",
        params=[("rank", ast.INT), ("nranks", ast.INT)],
        locals=[("i", ast.INT), ("total", ast.INT)],
        body=[
            ast.assign("total", ast.const(0)),
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(10),
                [
                    ast.assign("total", ast.add(ast.var("total"), ast.mul(ast.var("i"), ast.var("i")))),
                    ast.store("squares", ast.var("i"), ast.mul(ast.var("i"), ast.var("i"))),
                ],
            ),
            ast.ExprStmt(ast.call("print_int", ast.var("total"), type=ast.VOID)),
            ast.Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    return ast.Module(name="smoke", functions=[main], globals=[ast.GlobalVar("squares", ast.INT, 16)])


def main() -> None:
    for arch in (ARMV7, ARMV8):
        program = link([build_module()], arch, name="smoke")
        system = build_system(arch.name, cores=1)
        system.load_process(program, name="smoke")
        reason = system.run(max_instructions=1_000_000)
        process = system.kernel.processes[0]
        print(arch.name, reason, "exit", process.exit_code, "output", process.output_text().strip(),
              "instructions", system.total_instructions)
        assert process.output_text().strip() == "285"


if __name__ == "__main__":
    main()
