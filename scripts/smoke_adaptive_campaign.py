#!/usr/bin/env python
"""CI smoke test: CI-driven adaptive campaigns.

Three properties of the statistical campaign engine, end to end:

1. **Convergence** — every scenario's adaptive run stops on the CI
   rule (not the fault budget) with each tracked rate's half-width at
   or under the plan's target.
2. **Efficiency** — the faults spent stay under the fixed-count design
   a one-shot campaign would need for the same interval guarantee
   (``ceil(z^2/4w^2)``), the adaptive engine's reason to exist.
3. **Batch-granular resume** — a run killed mid-scenario leaves a
   checkpoint in the store's ``partials/``; resuming replays it and the
   finished campaign is bit-identical — injections, batch provenance
   and estimates — to an uninterrupted run of the same seed and plan.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.efficiency_table import fixed_equivalent
from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import campaign_fingerprint
from repro.stats import STOP_CONVERGED, SamplingPlan

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv7"),
    Scenario("IS", "serial", 1, "armv8"),
]
CONFIG = CampaignConfig(seed=2018)
PLAN = SamplingPlan(
    target_half_width=0.05, confidence=0.95, min_faults=48, max_faults=512, batch_size=48
)


def runner(progress=None) -> CampaignRunner:
    return CampaignRunner(CONFIG, workers=0, faults_per_job=16, progress=progress, plan=PLAN)


def main() -> int:
    fixed_twin = fixed_equivalent(PLAN.target_half_width, PLAN.confidence)

    with tempfile.TemporaryDirectory(prefix="repro-adaptive-smoke-") as tmp:
        # Phase 1: a clean adaptive campaign — converges and beats the
        # fixed-count design on every scenario.
        clean_store = CampaignStore(Path(tmp) / "clean")
        clean = runner().run_suite(SCENARIOS, store=clean_store)
        for scenario in SCENARIOS:
            adaptive = clean.get(scenario.scenario_id).adaptive
            widths = [e["half_width"] for e in adaptive["estimates"].values()]
            print(
                f"{scenario.scenario_id}: spent {adaptive['spent']} "
                f"(fixed twin {fixed_twin}, {fixed_twin / adaptive['spent']:.2f}x), "
                f"half-width {max(widths):.4f}, stop: {adaptive['stopping']}"
            )
            if adaptive["stopping"] != STOP_CONVERGED:
                print(f"FAIL: {scenario.scenario_id} stopped on {adaptive['stopping']}")
                return 1
            if max(widths) > PLAN.target_half_width:
                print(f"FAIL: achieved half-width {max(widths):.4f} above target")
                return 1
            if adaptive["spent"] >= fixed_twin:
                print(f"FAIL: adaptive spent {adaptive['spent']} >= fixed twin {fixed_twin}")
                return 1
        if clean_store.partial_ids():
            print("FAIL: completed campaign left checkpoints behind")
            return 1

        # Phase 2: kill the run one batch after its first checkpoint.
        store = CampaignStore(Path(tmp) / "resumed")
        adapt_lines = []

        def kill_on_second_batch(message: str) -> None:
            if message.startswith("[adapt]"):
                adapt_lines.append(message)
                if len(adapt_lines) == 2:
                    raise KeyboardInterrupt

        try:
            runner(progress=kill_on_second_batch).run_suite(SCENARIOS, store=store)
        except KeyboardInterrupt:
            pass
        else:
            print("FAIL: the simulated interrupt never fired")
            return 1
        partials = store.partial_ids()
        print(f"interrupted mid-scenario; checkpoints on disk: {sorted(partials)}")
        if partials != {SCENARIOS[0].scenario_id}:
            print("FAIL: expected exactly the first scenario's checkpoint on disk")
            return 1

        # Phase 3: resume — the checkpoint replays instead of restarting.
        messages: list[str] = []
        resumed = runner(progress=messages.append).run_suite(
            SCENARIOS, store=store, resume=True
        )
        restored = [m for m in messages if "restored" in m]
        print(f"resume: {len(restored)} scenario(s) continued from a checkpoint")
        if len(restored) != 1:
            print("FAIL: the resumed run did not replay the checkpoint")
            return 1
        if campaign_fingerprint(resumed) != campaign_fingerprint(clean):
            print("FAIL: resumed campaign differs from the uninterrupted run")
            return 1
        for scenario in SCENARIOS:
            sid = scenario.scenario_id
            if resumed.get(sid).adaptive != clean.get(sid).adaptive:
                print(f"FAIL: adaptive provenance of {sid} differs after resume")
                return 1
        if store.partial_ids():
            print("FAIL: resumed campaign left checkpoints behind")
            return 1
        total = sum(clean.get(s.scenario_id).adaptive["spent"] for s in SCENARIOS)
        print(
            f"OK: adaptive campaign converged, resumed bit-identically, and spent "
            f"{total} faults vs {fixed_twin * len(SCENARIOS)} fixed-count"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
