#!/usr/bin/env python
"""CI smoke test: distributed campaign determinism.

Starts a coordinator (in-process HTTP server on an ephemeral loopback
port) and **two worker OS processes** (`run_campaign.py work`), lets
them drain a small filtered campaign, polls `status` until complete,
and asserts:

1. the materialized `ResultsDatabase` has a `campaign_fingerprint`
   bit-identical to a local single-process `run` of the same slice
   (wall times stripped);
2. no scenario executed twice — every lease was granted exactly once
   and each scenario has exactly one shard.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration import CampaignRunner, CampaignStore
from repro.orchestration.database import campaign_fingerprint
from repro.service import CampaignCoordinator, CoordinatorClient, make_server

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv8"),
    Scenario("EP", "serial", 1, "armv8"),
    Scenario("IS", "omp", 2, "armv8"),
    Scenario("EP", "serial", 1, "armv7"),
]
CONFIG = CampaignConfig(faults_per_scenario=6, seed=2018)
TIMEOUT = 600.0


def spawn_worker(url: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, str(ROOT / "scripts" / "run_campaign.py"), "work",
            "--coordinator", url, "--worker-id", worker_id,
            "--workers", "0", "--poll-interval", "0.2",
        ],
        env=env,
    )


def main() -> int:
    # The reference: the same slice through the local `run` driver.
    local = CampaignRunner(CONFIG, workers=0).run_suite(SCENARIOS)
    reference = campaign_fingerprint(local)

    with tempfile.TemporaryDirectory(prefix="repro-distributed-smoke-") as tmp:
        coordinator = CampaignCoordinator(
            CampaignStore(Path(tmp) / "store"), SCENARIOS, CONFIG, lease_ttl=60.0
        )
        server = make_server(coordinator)  # port 0: ephemeral
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        print(f"coordinator at {url}, {len(SCENARIOS)} scenarios")

        workers = [spawn_worker(url, f"smoke-w{i}") for i in (1, 2)]
        client = CoordinatorClient(url)
        deadline = time.monotonic() + TIMEOUT
        status = None
        try:
            while time.monotonic() < deadline:
                status = client.get("/status")
                print(
                    f"status: {status['completed']}/{status['scenarios']} completed, "
                    f"{len(status['leased'])} leased"
                )
                if status["done"]:
                    break
                time.sleep(1.0)
            else:
                print("FAIL: campaign did not complete within the timeout")
                return 1
        finally:
            for worker in workers:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
            server.shutdown()

        exit_codes = [worker.returncode for worker in workers]
        print(f"worker exit codes: {exit_codes}")
        if any(code != 0 for code in exit_codes):
            print("FAIL: a worker exited non-zero")
            return 1

        # Lease accounting: every scenario granted exactly once — the
        # proof nothing executed twice.
        grants = status["lease_grants"]
        print(f"lease grants: {grants}")
        if sorted(grants) != sorted(s.scenario_id for s in SCENARIOS):
            print("FAIL: lease grants do not cover the suite exactly")
            return 1
        if any(count != 1 for count in grants.values()):
            print("FAIL: a scenario was leased more than once (reclaim happened)")
            return 1
        if status["failures"]:
            print(f"FAIL: scenario failures recorded: {status['failures']}")
            return 1

        distributed = coordinator.results.database()
        if len(distributed) != len(SCENARIOS):
            print(f"FAIL: {len(distributed)} shards for {len(SCENARIOS)} scenarios")
            return 1
        if campaign_fingerprint(distributed) != reference:
            print("FAIL: distributed database differs from the local run")
            return 1
        print(f"grant log (scenario -> worker): {status['grant_log']}")
        print(
            f"OK: distributed campaign is bit-identical to the local run "
            f"({distributed.total_injections()} injections, "
            f"{len(distributed)} scenarios, 2 worker processes)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
