"""Memory/cache fault campaign smoke test.

Exercises the fault-target dimension end to end on both ISAs: a small
campaign with a mixed register/memory/cache target mix must run without
errors, actually inject memory and cache faults, classify every run
into the five-category taxonomy (plus the explicit NotInjected bucket)
and reproduce bit-for-bit under the same (scenario, seed, count).
"""

from __future__ import annotations

import sys

from repro.analysis.target_table import render_target_table
from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.injection.classify import NOT_INJECTED, Outcome
from repro.injection.fault import TARGET_CACHE, TARGET_MEMORY
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase

TARGET_MIX = {"gpr": 0.6, "memory": 0.3, "cache": 0.1}
FAULTS = 24
SEED = 2018

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv7"),
    Scenario("IS", "omp", 2, "armv8"),
]

VALID_OUTCOMES = {outcome.value for outcome in Outcome} | {NOT_INJECTED}


def run_campaign(scenario: Scenario) -> object:
    config = CampaignConfig(faults_per_scenario=FAULTS, seed=SEED, target_mix=TARGET_MIX)
    return ScenarioCampaign(scenario, config).run()


def main() -> int:
    database = ResultsDatabase()
    for scenario in SCENARIOS:
        report = run_campaign(scenario)
        kinds = [result.fault.target_kind for result in report.results]
        assert kinds.count(TARGET_MEMORY) > 0, f"{scenario.scenario_id}: no memory faults injected"
        assert kinds.count(TARGET_CACHE) > 0, f"{scenario.scenario_id}: no cache faults injected"
        outcomes = {result.outcome for result in report.results}
        assert outcomes <= VALID_OUTCOMES, f"{scenario.scenario_id}: bad outcomes {outcomes - VALID_OUTCOMES}"

        rerun = run_campaign(scenario)
        assert [(r.fault, r.outcome) for r in rerun.results] == [
            (r.fault, r.outcome) for r in report.results
        ], f"{scenario.scenario_id}: campaign is not reproducible"

        database.add_report(report)
        print(
            f"[ok] {scenario.scenario_id}: "
            + ", ".join(f"{k}={v}" for k, v in report.counts.items() if v)
            + f" (memory={kinds.count(TARGET_MEMORY)}, cache={kinds.count(TARGET_CACHE)})"
        )

    print()
    print(render_target_table(database))
    print("\nmemory-campaign smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
