"""Developer smoke test for the guest runtimes (softfloat, OpenMP, MPI)."""

import struct

from repro.compiler import ast
from repro.compiler.ast import ExprStmt, Function, FuncAddr, GlobalVar, If, Module, Return, assign, call, var
from repro.compiler.linker import link
from repro.isa.arch import ARMV7, ARMV8
from repro.runtime import runtime_modules
from repro.soc.multicore import build_system


def float_app() -> Module:
    main = Function(
        name="main",
        params=[("rank", ast.INT)],
        locals=[("i", ast.INT), ("x", ast.FLOAT), ("acc", ast.FLOAT)],
        body=[
            assign("acc", ast.FloatConst(0.0)),
            ast.for_range(
                "i",
                ast.const(1),
                ast.const(20),
                [
                    assign("x", ast.div(ast.FloatConst(1.0), ast.int_to_float(var("i")))),
                    assign("acc", ast.add(ast.fvar("acc"), ast.fvar("x"))),
                ],
            ),
            assign("acc", ast.fcall("sqrt", ast.fvar("acc"))),
            ExprStmt(call("print_float", ast.fvar("acc"), type=ast.VOID)),
            Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    return Module("floatapp", [main], [])


def omp_app(nthreads: int) -> Module:
    worker = Function(
        name="sum_worker",
        params=[("lo", ast.INT), ("hi", ast.INT), ("wid", ast.INT)],
        locals=[("i", ast.INT), ("acc", ast.INT)],
        body=[
            assign("acc", ast.const(0)),
            ast.for_range("i", var("lo"), var("hi"), [assign("acc", ast.add(var("acc"), var("i")))]),
            ast.store("partials", var("wid"), var("acc")),
            Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    main = Function(
        name="main",
        params=[("rank", ast.INT), ("nranks", ast.INT), ("nthreads", ast.INT)],
        locals=[("i", ast.INT), ("total", ast.INT)],
        body=[
            ExprStmt(call("omp_init", var("nthreads"))),
            ExprStmt(call("omp_parallel_for", FuncAddr("sum_worker"), ast.const(0), ast.const(1000))),
            assign("total", ast.const(0)),
            ast.for_range("i", ast.const(0), var("nthreads"), [assign("total", ast.add(var("total"), ast.load("partials", var("i"))))]),
            ExprStmt(call("omp_shutdown")),
            ExprStmt(call("print_int", var("total"), type=ast.VOID)),
            Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    return Module("ompapp", [worker, main], [GlobalVar("partials", ast.INT, 16)])


def mpi_app() -> Module:
    main = Function(
        name="main",
        params=[("rank", ast.INT), ("nranks", ast.INT)],
        locals=[("i", ast.INT), ("acc", ast.INT), ("lo", ast.INT), ("hi", ast.INT), ("chunk", ast.INT), ("total", ast.INT)],
        body=[
            assign("chunk", ast.div(ast.const(1000), var("nranks"))),
            assign("lo", ast.mul(var("rank"), var("chunk"))),
            assign("hi", ast.add(var("lo"), var("chunk"))),
            If(ast.eq(var("rank"), ast.sub(var("nranks"), ast.const(1))), [assign("hi", ast.const(1000))]),
            assign("acc", ast.const(0)),
            ast.for_range("i", var("lo"), var("hi"), [assign("acc", ast.add(var("acc"), var("i")))]),
            assign("total", call("mpi_allreduce_sum_int", var("acc"))),
            If(ast.eq(var("rank"), ast.const(0)), [ExprStmt(call("print_int", var("total"), type=ast.VOID))]),
            ExprStmt(call("mpi_finalize")),
            Return(ast.const(0)),
        ],
        return_type=ast.INT,
    )
    return Module("mpiapp", [main], [])


def run_serial_float():
    expected = sum(1.0 / i for i in range(1, 20)) ** 0.5
    for arch in (ARMV7, ARMV8):
        program = link([float_app()] + runtime_modules(arch), arch, name="floatapp")
        system = build_system(arch.name, cores=1)
        system.load_process(program, name="floatapp")
        system.run(max_instructions=5_000_000)
        out = system.kernel.processes[0].output_text().strip()
        value = float(out)
        print(f"float {arch.name}: got {value:.6f} expected {expected:.6f} "
              f"instrs={system.total_instructions} text={len(program.instructions)}")
        assert abs(value - expected) < 2e-3, (arch.name, value, expected)


def run_omp():
    for arch in (ARMV7, ARMV8):
        for threads, cores in ((2, 2), (4, 4)):
            program = link([omp_app(threads)] + runtime_modules(arch, "omp"), arch, name="ompapp")
            system = build_system(arch.name, cores=cores)
            system.load_process(program, name="ompapp", nthreads_hint=threads)
            system.run(max_instructions=5_000_000)
            out = system.kernel.processes[0].output_text().strip()
            print(f"omp {arch.name} t={threads}: {out} instrs={system.total_instructions}")
            assert out == str(sum(range(1000))), out


def run_mpi():
    for arch in (ARMV7, ARMV8):
        for ranks in (2, 4):
            program = link([mpi_app()] + runtime_modules(arch, "mpi"), arch, name="mpiapp")
            system = build_system(arch.name, cores=ranks)
            system.load_mpi_job(program, nranks=ranks, name="mpiapp")
            system.run(max_instructions=5_000_000)
            out = system.combined_output().strip()
            print(f"mpi {arch.name} r={ranks}: {out} instrs={system.total_instructions}")
            assert out == str(sum(range(1000))), out


if __name__ == "__main__":
    run_serial_float()
    run_omp()
    run_mpi()
    print("runtime smoke OK")
