#!/usr/bin/env python
"""Campaign CLI: local runs, distributed coordination, workers, status.

Subcommands:

``run``
    Execute a (subset of the) 130-scenario campaign locally — the
    original single-host driver, flags unchanged.  Invocations that
    omit the subcommand keep working (``run`` is implied).
``serve``
    Start a campaign coordinator: an HTTP service that leases the
    selected scenarios to workers over a campaign store and ingests
    their shards.
``work``
    Start a worker agent against a coordinator URL: poll for leases,
    execute scenarios, push shards back.  Ctrl-C drains gracefully
    (the in-flight scenario finishes and commits).
``status``
    Inspect a campaign — progress, leases, outcome totals and the
    per-scenario failure records — from a coordinator URL or directly
    from a store directory; ``--table`` renders an analysis table.

Examples::

    # the full paper matrix, 8 workers, resumable store (local mode)
    python scripts/run_campaign.py run --store campaign.store --workers 8

    # continue an interrupted local campaign
    python scripts/run_campaign.py run --apps IS --isas armv8 --faults 100 \
        --store is.store --workers 4 --resume

    # distributed: coordinator on one host ...
    python scripts/run_campaign.py serve --store campaign.store \
        --host 0.0.0.0 --port 8018 --faults 8000

    # ... any number of workers on any hosts ...
    python scripts/run_campaign.py work --coordinator http://box1:8018 --workers 8

    # ... and progress/failures/tables from anywhere
    python scripts/run_campaign.py status --coordinator http://box1:8018
    python scripts/run_campaign.py status --store campaign.store --table table1

    # dry-run the expanded matrix with hardening tags
    python scripts/run_campaign.py run --apps LU --hardening off dwc+cfc --list
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SimulatorError
from repro.hardening import HARDENING_SCHEMES, normalize_hardening
from repro.injection.campaign import CampaignConfig
from repro.npb.suite import APPLICATIONS, ISAS, build_scenario_suite
from repro.orchestration import CampaignRunner, CampaignStore, DEFAULT_LEASE_TTL
from repro.orchestration.logging import add_logging_arguments, logger_from_args
from repro.service import (
    CampaignCoordinator,
    CoordinatorClient,
    ResultsService,
    TABLE_NAMES,
    WorkerAgent,
    format_status,
    serve,
)

SUBCOMMANDS = ("run", "serve", "work", "status", "analyze")


def hardening_scheme(value: str) -> str:
    """Argparse validator for --hardening: the registry schemes plus the
    selective ``dwcN`` grammar (e.g. ``dwc4``, ``cfc+dwc4``)."""
    try:
        normalize_hardening(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value


def add_selection_arguments(parser: argparse.ArgumentParser) -> None:
    select = parser.add_argument_group("scenario selection")
    select.add_argument("--apps", nargs="+", metavar="APP", choices=sorted(APPLICATIONS),
                        help="restrict to these applications (default: all)")
    select.add_argument("--modes", nargs="+", metavar="MODE", choices=["serial", "omp", "mpi"],
                        help="restrict to these programming models (default: all)")
    select.add_argument("--isas", nargs="+", metavar="ISA", choices=list(ISAS),
                        help="restrict to these ISAs (default: both)")
    select.add_argument("--cores", nargs="+", type=int, metavar="N", choices=[1, 2, 4],
                        help="restrict to these core counts (default: all)")
    select.add_argument("--hardening", nargs="+", metavar="SCHEME",
                        type=hardening_scheme,
                        help="sweep these software-hardening schemes across the selected "
                             f"scenarios: one of {', '.join(HARDENING_SCHEMES)}, a "
                             "selective dwcN variant such as dwc4, or a checkpoint-"
                             "rollback recovery policy appended as +rec / +recN "
                             "(e.g. dwc+rec, dwc2+cfc+rec5; N bounds the retries) "
                             "(default: off — the paper's unhardened binaries)")
    select.add_argument("--list", "--list-scenarios", dest="list", action="store_true",
                        help="dry run: print the expanded scenario matrix (with hardening "
                             "tags) and exit without running anything")


def add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    campaign = parser.add_argument_group("campaign")
    campaign.add_argument("--faults", type=int, default=200,
                          help="faults injected per scenario (the paper uses 8000)")
    campaign.add_argument("--seed", type=int, default=2018, help="campaign seed")
    campaign.add_argument("--keep-injections", action="store_true",
                          help="keep per-injection records (larger shards)")


def add_adaptive_arguments(parser: argparse.ArgumentParser) -> None:
    adaptive = parser.add_argument_group(
        "adaptive sampling",
        "CI-driven stopping: draw stratified batches until every tracked "
        "outcome rate's confidence interval is tight enough, instead of a "
        "fixed --faults count (see docs/statistics.md)",
    )
    adaptive.add_argument("--adaptive", action="store_true",
                          help="enable CI-driven adaptive sampling (--faults is ignored)")
    adaptive.add_argument("--ci-half-width", type=float, default=0.02, metavar="W",
                          help="stop when every tracked rate's half-width is <= W")
    adaptive.add_argument("--confidence", type=float, default=0.95,
                          help="confidence level of the stopping intervals")
    adaptive.add_argument("--batch-size", type=int, default=64,
                          help="faults drawn per adaptive batch")
    adaptive.add_argument("--min-faults", type=int, default=64,
                          help="never stop before this many faults per scenario")
    adaptive.add_argument("--max-faults", type=int, default=4096,
                          help="per-scenario fault budget ceiling")
    adaptive.add_argument("--prior-store", type=Path, default=None, metavar="DIR",
                          help="mine allocation priors from this *completed* campaign "
                               "store (needs shards kept with --keep-injections)")


def sampling_plan(args: argparse.Namespace):
    """The SamplingPlan for --adaptive runs, or None."""
    if not getattr(args, "adaptive", False):
        return None
    from repro.hardening import recovery_retries
    from repro.stats import SamplingPlan
    from repro.stats.estimators import TRACKED_RATES

    # recovery sweeps opt the Recovered rate into the stopping rule;
    # rec-less sweeps keep the default track so their draws are identical
    extra = {}
    schemes = getattr(args, "hardening", None) or []
    if any(recovery_retries(scheme) is not None for scheme in schemes):
        extra["track"] = TRACKED_RATES + ("Recovered",)
    return SamplingPlan(
        target_half_width=args.ci_half_width,
        confidence=args.confidence,
        min_faults=args.min_faults,
        max_faults=args.max_faults,
        batch_size=args.batch_size,
        **extra,
    )


def mined_prior(args: argparse.Namespace):
    """The MinedPrior for --adaptive --prior-store runs, or None."""
    if not getattr(args, "adaptive", False) or args.prior_store is None:
        return None
    from repro.stats import MinedPrior

    prior = MinedPrior.from_store(CampaignStore(args.prior_store))
    if not prior.cells:
        raise SimulatorError(
            f"prior store {args.prior_store} yielded no mineable injections "
            "(was the campaign run with --keep-injections?)"
        )
    return prior


def add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    execution = parser.add_argument_group("execution")
    execution.add_argument("--workers", type=int, default=4,
                           help="worker processes (0/1 = in-process)")
    execution.add_argument("--faults-per-job", type=int, default=16,
                           help="injection batch size per pool job")
    execution.add_argument("--job-retries", type=int, default=1,
                           help="extra rounds granted to failed jobs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fault-injection campaigns: local runs, distributed "
                    "coordination, workers and status.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    # -- run ------------------------------------------------------------
    run = subparsers.add_parser(
        "run", help="execute a campaign locally (the original driver)",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    add_selection_arguments(run)
    add_campaign_arguments(run)
    add_adaptive_arguments(run)
    add_execution_arguments(run)
    run.add_argument("--throughput", action="store_true",
                     help="report aggregate guest MIPS and per-scenario wall time "
                          "in the suite ETA line (campaign speed visibility)")
    persist = run.add_argument_group("persistence")
    persist.add_argument("--store", type=Path, default=None, metavar="DIR",
                         help="campaign store directory (shards + manifest)")
    persist.add_argument("--resume", action="store_true",
                         help="skip scenarios whose shards already exist in --store")
    persist.add_argument("--out", type=Path, default=None, metavar="FILE.json",
                         help="write the assembled database as JSON")
    persist.add_argument("--csv", type=Path, default=None, metavar="FILE.csv",
                         help="export the per-scenario records as CSV")
    add_logging_arguments(run)

    # -- serve ----------------------------------------------------------
    serve_parser = subparsers.add_parser(
        "serve", help="start a campaign coordinator over a store",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    add_selection_arguments(serve_parser)
    add_campaign_arguments(serve_parser)
    add_adaptive_arguments(serve_parser)
    serve_parser.add_argument("--store", type=Path, required=True, metavar="DIR",
                              help="campaign store directory (the source of truth)")
    serve_parser.add_argument("--resume", action="store_true",
                              help="continue the campaign the store already holds")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (0.0.0.0 to accept remote workers)")
    serve_parser.add_argument("--port", type=int, default=8018,
                              help="bind port (0 = ephemeral)")
    serve_parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                              metavar="SECONDS",
                              help="lease lifetime; a worker silent this long is "
                                   "presumed dead and its scenario is reclaimed")
    serve_parser.add_argument("--until-complete", action="store_true",
                              help="exit once every scenario has a shard "
                                   "(batch mode; default serves forever)")
    add_logging_arguments(serve_parser)

    # -- work -----------------------------------------------------------
    work = subparsers.add_parser(
        "work", help="start a worker agent against a coordinator",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    work.add_argument("--coordinator", required=True, metavar="URL",
                      help="coordinator base URL, e.g. http://box1:8018")
    work.add_argument("--worker-id", default=None,
                      help="lease owner name (default: worker-<pid>)")
    add_execution_arguments(work)
    work.add_argument("--poll-interval", type=float, default=1.0, metavar="SECONDS",
                      help="base delay between idle polls (jittered, "
                           "exponential backoff while everything is leased)")
    add_logging_arguments(work)

    # -- analyze --------------------------------------------------------
    analyze = subparsers.add_parser(
        "analyze", help="static vulnerability analysis: predicted AVF tables, "
                        "variable ranks and predicted-vs-measured validation",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    add_selection_arguments(analyze)
    analyze.add_argument("--validate", type=Path, default=None, metavar="STORE",
                         help="correlate predictions with the measured masking in an "
                              "existing campaign store directory (or saved results "
                              "JSON) — no injections are re-run")
    analyze.add_argument("--static-only", action="store_true",
                         help="skip the golden profiling run and weight every "
                              "instruction equally (faster, less accurate)")
    analyze.add_argument("--variables", action="store_true",
                         help="also print per-function variable vulnerability ranks "
                              "(what selective dwcN hardening consumes)")
    analyze.add_argument("--top", type=int, default=5, metavar="N",
                         help="variables per function shown with --variables")
    add_logging_arguments(analyze)

    # -- status ---------------------------------------------------------
    status = subparsers.add_parser(
        "status", help="inspect campaign progress, failures and tables",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    source = status.add_mutually_exclusive_group(required=True)
    source.add_argument("--coordinator", metavar="URL",
                        help="query a running coordinator")
    source.add_argument("--store", type=Path, metavar="DIR",
                        help="read a campaign store directly")
    status.add_argument("--table", choices=TABLE_NAMES, default=None,
                        help="also render one analysis table")
    add_logging_arguments(status)
    return parser


def parse_args(argv=None) -> argparse.Namespace:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: pre-subcommand invocations (run_campaign.py --apps IS
    # ...) keep working — anything that doesn't start with a known
    # subcommand is a `run`.
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run" and args.resume and args.store is None:
        parser.error("--resume requires --store")
    return args


def select_suite(args: argparse.Namespace):
    suite = build_scenario_suite(isas=args.isas or ISAS).filter(
        apps=args.apps, modes=args.modes, core_counts=args.cores
    )
    if args.hardening:
        suite = suite.sweep_hardenings(
            [None if scheme == "off" else scheme for scheme in args.hardening]
        )
    return suite


def campaign_config(args: argparse.Namespace) -> CampaignConfig:
    return CampaignConfig(
        faults_per_scenario=args.faults,
        seed=args.seed,
        keep_individual_results=args.keep_injections,
    )


def cmd_run(args: argparse.Namespace) -> int:
    logger = logger_from_args(args, "run")
    suite = select_suite(args)
    if len(suite) == 0:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2
    if args.list:
        for scenario in suite:
            print(scenario.scenario_id)
        print(f"-- {len(suite)} scenarios")
        return 0

    try:
        plan = sampling_plan(args)
        prior = mined_prior(args)
    except (SimulatorError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = CampaignRunner(
        campaign_config(args),
        workers=args.workers,
        faults_per_job=args.faults_per_job,
        job_retries=args.job_retries,
        progress=logger.progress(),
        throughput=args.throughput,
        plan=plan,
        prior=prior,
    )
    store = CampaignStore(args.store) if args.store is not None else None
    resumed = len(store.completed_ids()) if (store is not None and args.resume) else 0
    if plan is not None:
        shape = (f"adaptive to ±{plan.target_half_width} at "
                 f"{plan.confidence:.0%} (<= {plan.max_faults} faults)"
                 + (", mined prior" if prior is not None else ""))
    else:
        shape = f"{args.faults} faults"
    logger.info(
        f"campaign: {len(suite)} scenarios x {shape}, "
        f"{args.workers} workers"
        + (f", resuming past {resumed} completed shard(s)" if resumed else "")
    )
    start = time.monotonic()
    try:
        database = runner.run_suite(suite, store=store, resume=args.resume)
    except KeyboardInterrupt:
        print("\ninterrupted — completed shards are preserved; rerun with --resume")
        return 130
    except SimulatorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - start

    totals = database.outcome_totals()
    print(
        f"\ncompleted {len(database)}/{len(suite)} scenarios "
        f"({database.total_injections()} injections) in {elapsed:.1f}s"
    )
    if args.throughput and elapsed > 0:
        print(f"throughput: {runner.guest_instructions / elapsed / 1e6:.2f} aggregate guest MIPS "
              f"({runner.guest_instructions} guest instructions)")
    print("outcomes: " + ", ".join(f"{k}={v}" for k, v in totals.items()))
    if plan is not None and len(database):
        from repro.analysis import efficiency_rows, render_efficiency_table

        print()
        print(render_efficiency_table(efficiency_rows(database, plan.as_dict())))
    for failure in database.failures:
        print(f"FAILED {failure.scenario_id} [{failure.phase}]: "
              f"{failure.error_type}: {failure.error}")
    if args.out is not None:
        print(f"database -> {database.save_json(args.out)}")
    if args.csv is not None:
        print(f"csv      -> {database.export_csv(args.csv)}")
    return 1 if database.failures else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import render_predicted_avf, render_table
    from repro.npb.suite import build_program
    from repro.staticlint import (
        analyze_liveness,
        analyze_program,
        analyze_scenario,
        validate_store,
        variable_ranks,
    )

    if args.validate is not None:
        report = validate_store(args.validate)
        if not report.rows:
            print("no register-file scenarios to validate in this store", file=sys.stderr)
            return 2
        print(report.render())
        return 0

    suite = select_suite(args)
    if len(suite) == 0:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2
    if args.list:
        for scenario in suite:
            print(scenario.scenario_id)
        print(f"-- {len(suite)} scenarios")
        return 0

    vulnerabilities = []
    for scenario in suite:
        if args.static_only:
            program = build_program(
                scenario.app, scenario.mode, scenario.isa, scenario.hardening
            )
            vulnerabilities.append(
                analyze_program(
                    program,
                    scenario_id=scenario.scenario_id,
                    app=scenario.app,
                    mode=scenario.mode,
                    isa=scenario.isa,
                    hardening=scenario.hardening_label,
                )
            )
        else:
            vulnerabilities.append(analyze_scenario(scenario))
    print(render_predicted_avf(vulnerabilities))

    if args.variables:
        seen = set()
        for scenario in suite:
            variant = (scenario.app, scenario.mode, scenario.isa, scenario.hardening_label)
            if variant in seen:
                continue
            seen.add(variant)
            program = build_program(
                scenario.app, scenario.mode, scenario.isa, scenario.hardening
            )
            ranks = variable_ranks(program, analyze_liveness(program))
            rows = []
            for function in sorted(ranks):
                ordered = sorted(ranks[function].items(), key=lambda item: (-item[1], item[0]))
                for variable, score in ordered[: args.top]:
                    rows.append({"function": function, "variable": variable,
                                 "score": round(score, 1)})
            print()
            print(render_table(rows, ["function", "variable", "score"],
                               title=f"Variable vulnerability ranks: {'/'.join(variant)}"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    logger = logger_from_args(args, "coordinator")
    suite = select_suite(args)
    if len(suite) == 0:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2
    if args.list:
        for scenario in suite:
            print(scenario.scenario_id)
        print(f"-- {len(suite)} scenarios")
        return 0
    try:
        coordinator = CampaignCoordinator(
            CampaignStore(args.store),
            suite,
            campaign_config(args),
            faults=None,
            resume=args.resume,
            lease_ttl=args.lease_ttl,
            logger=logger,
            plan=sampling_plan(args),
            prior=mined_prior(args),
        )
    except (SimulatorError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    serve(
        coordinator,
        host=args.host,
        port=args.port,
        until_complete=args.until_complete,
    )
    return 0 if coordinator.done else 130


def cmd_work(args: argparse.Namespace) -> int:
    worker_id = args.worker_id or None
    agent = WorkerAgent(
        args.coordinator,
        worker_id=worker_id,
        workers=args.workers,
        faults_per_job=args.faults_per_job,
        job_retries=args.job_retries,
        poll_interval=args.poll_interval,
        logger=logger_from_args(args, worker_id or "worker"),
    )

    def drain(signum, frame):  # first Ctrl-C: finish the scenario, then exit
        agent.logger.warning("stop requested; draining (Ctrl-C again to abort)")
        agent.request_stop()
        signal.signal(signal.SIGINT, signal.default_int_handler)

    previous = signal.signal(signal.SIGINT, drain)
    try:
        agent.run()
    except KeyboardInterrupt:
        print("\naborted — the in-flight lease will expire and be reclaimed")
        return 130
    except SimulatorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGINT, previous)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    try:
        if args.coordinator:
            client = CoordinatorClient(args.coordinator)
            status = client.get("/status")
            table = client.get(f"/results/{args.table}") if args.table else None
        else:
            service = ResultsService(CampaignStore(args.store))
            status = service.status()
            table = service.table(args.table) if args.table else None
    except (SimulatorError, ConnectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_status(status))
    if table is not None:
        print()
        print(table["rendered"])
    return 0


def main(argv=None) -> int:
    args = parse_args(argv)
    return {
        "run": cmd_run,
        "serve": cmd_serve,
        "work": cmd_work,
        "status": cmd_status,
        "analyze": cmd_analyze,
    }[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
