#!/usr/bin/env python
"""Run a (subset of the) 130-scenario campaign from the command line.

The campaign engine streams every finished scenario into a store
directory (one JSON shard per scenario, written atomically), so a
crashed or interrupted run never loses completed work: rerun with
``--resume`` and only the missing scenarios execute.

Examples::

    # the full paper matrix, 8 workers, resumable store
    python scripts/run_campaign.py --store campaign.store --workers 8

    # a laptop-sized slice: one app, one ISA, 100 faults per scenario
    python scripts/run_campaign.py --apps IS --isas armv8 --faults 100 \
        --store is.store --workers 4

    # continue an interrupted campaign
    python scripts/run_campaign.py --apps IS --isas armv8 --faults 100 \
        --store is.store --workers 4 --resume

    # list the matrix a filter selects, without running anything
    python scripts/run_campaign.py --apps IS EP --modes omp mpi --list

    # open the software-hardening axis: every selected scenario also
    # runs as a dwc and a dwc+cfc hardened variant
    python scripts/run_campaign.py --apps LU --isas armv8 --faults 150 \
        --hardening off dwc dwc+cfc --store lu-hardening.store

    # dry-run the expanded matrix with hardening tags
    python scripts/run_campaign.py --apps LU --hardening off dwc+cfc --list-scenarios
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SimulatorError
from repro.hardening import HARDENING_SCHEMES
from repro.injection.campaign import CampaignConfig
from repro.npb.suite import APPLICATIONS, ISAS, build_scenario_suite
from repro.orchestration import CampaignRunner, CampaignStore


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Resilient, resumable fault-injection campaign runner.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    select = parser.add_argument_group("scenario selection")
    select.add_argument("--apps", nargs="+", metavar="APP", choices=sorted(APPLICATIONS),
                        help="restrict to these applications (default: all)")
    select.add_argument("--modes", nargs="+", metavar="MODE", choices=["serial", "omp", "mpi"],
                        help="restrict to these programming models (default: all)")
    select.add_argument("--isas", nargs="+", metavar="ISA", choices=list(ISAS),
                        help="restrict to these ISAs (default: both)")
    select.add_argument("--cores", nargs="+", type=int, metavar="N", choices=[1, 2, 4],
                        help="restrict to these core counts (default: all)")
    select.add_argument("--hardening", nargs="+", metavar="SCHEME",
                        choices=list(HARDENING_SCHEMES),
                        help="sweep these software-hardening schemes across the selected "
                             "scenarios (default: off — the paper's unhardened binaries)")
    select.add_argument("--list", "--list-scenarios", dest="list", action="store_true",
                        help="dry run: print the expanded scenario matrix (with hardening "
                             "tags) and exit without running anything")

    campaign = parser.add_argument_group("campaign")
    campaign.add_argument("--faults", type=int, default=200,
                          help="faults injected per scenario (the paper uses 8000)")
    campaign.add_argument("--seed", type=int, default=2018, help="campaign seed")
    campaign.add_argument("--workers", type=int, default=4,
                          help="worker processes (0/1 = in-process)")
    campaign.add_argument("--faults-per-job", type=int, default=16,
                          help="injection batch size per pool job")
    campaign.add_argument("--job-retries", type=int, default=1,
                          help="extra rounds granted to failed jobs")
    campaign.add_argument("--keep-injections", action="store_true",
                          help="keep per-injection records (larger shards)")
    campaign.add_argument("--throughput", action="store_true",
                          help="report aggregate guest MIPS and per-scenario wall time "
                               "in the suite ETA line (campaign speed visibility)")

    persist = parser.add_argument_group("persistence")
    persist.add_argument("--store", type=Path, default=None, metavar="DIR",
                         help="campaign store directory (shards + manifest)")
    persist.add_argument("--resume", action="store_true",
                         help="skip scenarios whose shards already exist in --store")
    persist.add_argument("--out", type=Path, default=None, metavar="FILE.json",
                         help="write the assembled database as JSON")
    persist.add_argument("--csv", type=Path, default=None, metavar="FILE.csv",
                         help="export the per-scenario records as CSV")
    args = parser.parse_args(argv)
    if args.resume and args.store is None:
        parser.error("--resume requires --store")
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    suite = build_scenario_suite(isas=args.isas or ISAS).filter(
        apps=args.apps, modes=args.modes, core_counts=args.cores
    )
    if args.hardening:
        suite = suite.sweep_hardenings(
            [None if scheme == "off" else scheme for scheme in args.hardening]
        )
    if len(suite) == 0:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2
    if args.list:
        for scenario in suite:
            print(scenario.scenario_id)
        print(f"-- {len(suite)} scenarios")
        return 0

    config = CampaignConfig(
        faults_per_scenario=args.faults,
        seed=args.seed,
        keep_individual_results=args.keep_injections,
    )
    runner = CampaignRunner(
        config,
        workers=args.workers,
        faults_per_job=args.faults_per_job,
        job_retries=args.job_retries,
        progress=lambda message: print(f"  {message}", flush=True),
        throughput=args.throughput,
    )
    store = CampaignStore(args.store) if args.store is not None else None
    resumed = len(store.completed_ids()) if (store is not None and args.resume) else 0
    print(
        f"campaign: {len(suite)} scenarios x {args.faults} faults, "
        f"{args.workers} workers"
        + (f", resuming past {resumed} completed shard(s)" if resumed else "")
    )
    start = time.monotonic()
    try:
        database = runner.run_suite(suite, store=store, resume=args.resume)
    except KeyboardInterrupt:
        print("\ninterrupted — completed shards are preserved; rerun with --resume")
        return 130
    except SimulatorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - start

    totals = database.outcome_totals()
    print(
        f"\ncompleted {len(database)}/{len(suite)} scenarios "
        f"({database.total_injections()} injections) in {elapsed:.1f}s"
    )
    if args.throughput and elapsed > 0:
        print(f"throughput: {runner.guest_instructions / elapsed / 1e6:.2f} aggregate guest MIPS "
              f"({runner.guest_instructions} guest instructions)")
    print("outcomes: " + ", ".join(f"{k}={v}" for k, v in totals.items()))
    for failure in database.failures:
        print(f"FAILED {failure.scenario_id} [{failure.phase}]: "
              f"{failure.error_type}: {failure.error}")
    if args.out is not None:
        print(f"database -> {database.save_json(args.out)}")
    if args.csv is not None:
        print(f"csv      -> {database.export_csv(args.csv)}")
    return 1 if database.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
