"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Extensive Evaluation of Programming Models and ISAs "
        "Impact on Multicore Soft Error Reliability' (DAC 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
