"""Checkpoint fast-forward benchmark.

Without checkpoints every injection re-simulates from boot up to its
injection point, so campaign cost grows quadratically with program
length; with golden-run checkpoints each injection restores the nearest
snapshot instead.  This benchmark tracks both configurations on one
laptop-scale scenario and asserts the fast-forward path actually wins:
deterministically (simulated instructions saved) everywhere, and by
wall clock too outside CI, where shared-runner noise would make a
timing comparison flaky.
"""

import os
import time

import pytest

from repro.checkpoint import nearest_checkpoint
from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.injection.injector import FaultInjector
from repro.npb.suite import Scenario

SCENARIO = Scenario("IS", "serial", 1, "armv8")
FAULTS = 12
SEED = 2018


def _config(checkpoint_interval: int | None) -> CampaignConfig:
    return CampaignConfig(
        faults_per_scenario=FAULTS,
        seed=SEED,
        checkpoint_interval=checkpoint_interval,
        keep_individual_results=False,
    )


def _run_campaign(checkpoint_interval: int | None) -> dict:
    return ScenarioCampaign(SCENARIO, _config(checkpoint_interval)).run().counts


@pytest.mark.parametrize(
    "checkpoint_interval", [0, None], ids=["boot-from-zero", "checkpointed"]
)
def test_bench_checkpoint_campaign(benchmark, checkpoint_interval):
    counts = benchmark(_run_campaign, checkpoint_interval)
    assert sum(counts.values()) == FAULTS


def _injection_cost(checkpoint_interval: int | None) -> tuple[dict, int, float]:
    """(outcome counts, instructions actually simulated, wall seconds)."""
    campaign = ScenarioCampaign(SCENARIO, _config(checkpoint_interval))
    golden = campaign.run_golden()
    faults = sorted(campaign.build_fault_list(), key=lambda f: (f.injection_time, f.fault_id))
    injector = FaultInjector(SCENARIO, golden)
    simulated = 0
    counts: dict[str, int] = {}
    start = time.perf_counter()
    for fault in faults:
        checkpoint = nearest_checkpoint(golden.checkpoints, fault.injection_time)
        skipped = checkpoint.instruction_count if checkpoint else 0  # fast-forwarded prefix
        result = injector.run_one(fault)
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
        simulated += result.executed_instructions - skipped
    return counts, simulated, time.perf_counter() - start


def test_checkpointing_beats_boot_from_zero():
    """Fast-forwarding must beat replay-from-boot (same outcomes, less work)."""
    baseline_counts, baseline_work, baseline_wall = _injection_cost(0)
    cp_counts, cp_work, cp_wall = _injection_cost(None)
    assert cp_counts == baseline_counts
    # Deterministic: the checkpointed campaign simulates strictly fewer
    # instructions because restored runs skip the pre-injection prefix.
    assert cp_work < baseline_work, (
        f"checkpointed campaign simulated {cp_work} instructions, "
        f"boot-from-zero {baseline_work}"
    )
    # Wall clock follows the saved work, but only assert it where the
    # clock is trustworthy (CI runners are noisy shared machines).
    if not os.environ.get("CI"):
        assert cp_wall < baseline_wall, (
            f"checkpointed campaign ({cp_wall:.3f}s) did not beat "
            f"boot-from-zero ({baseline_wall:.3f}s)"
        )
