"""Hardening overhead benchmark.

Compiler-implemented fault tolerance costs simulation throughput twice:
the hardened binary executes more guest instructions (the measured
dynamic overhead) and every injection replays part of that longer run.
This benchmark tracks the golden-run cost per scheme on one
laptop-scale scenario and asserts the deterministic side of the ledger:
hardened binaries are strictly larger and longer-running than the
baseline, composed schemes cost more than their components, and
fault-free behaviour is preserved.
"""

import pytest

from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario, build_program

SCENARIO = Scenario("IS", "serial", 1, "armv8")
SCHEMES = ["off", "dwc", "cfc", "dwc+cfc"]


def _golden(scheme: str):
    scenario = SCENARIO.with_hardening(None if scheme == "off" else scheme)
    return GoldenRunner(model_caches=False).run(scenario, collect_stats=False)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_bench_hardened_golden_run(benchmark, scheme):
    golden = benchmark(_golden, scheme)
    assert golden.exit_ok


def test_hardening_overhead_ledger():
    """Static and dynamic overhead ordering is deterministic."""
    goldens = {scheme: _golden(scheme) for scheme in SCHEMES}
    statics = {
        scheme: len(
            build_program(
                SCENARIO.app,
                SCENARIO.mode,
                SCENARIO.isa,
                None if scheme == "off" else scheme,
            ).instructions
        )
        for scheme in SCHEMES
    }
    base = goldens["off"]
    for scheme in ("dwc", "cfc", "dwc+cfc"):
        assert goldens[scheme].output == base.output
        assert goldens[scheme].total_instructions > base.total_instructions
        assert statics[scheme] > statics["off"]
    # composition costs at least as much as either component
    assert statics["dwc+cfc"] > max(statics["dwc"], statics["cfc"])
    assert goldens["dwc+cfc"].total_instructions > max(
        goldens["dwc"].total_instructions, goldens["cfc"].total_instructions
    )
