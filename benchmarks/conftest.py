"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
fault-injection campaign that feeds Figures 2/3 and Tables 2-4 runs
once per session over a configurable scenario subset; rendered
tables/figures are written to ``benchmarks/output/``.

Environment knobs
-----------------
``REPRO_BENCH_FAULTS``   faults per scenario (default 24; paper: 8000)
``REPRO_BENCH_WORKERS``  worker processes (default: up to 8)
``REPRO_BENCH_FULL``     set to 1 to run the full 130-scenario matrix
``REPRO_BENCH_APPS``     comma-separated app subset (default IS,EP,MG,LU)
"""

from __future__ import annotations

import pytest

from bench_helpers import OUTPUT_DIR, bench_faults, bench_scenarios, bench_workers

from repro.injection.campaign import CampaignConfig
from repro.injection.golden import GoldenRunner
from repro.orchestration.runner import CampaignRunner


@pytest.fixture(scope="session")
def campaign_database():
    """Run the fault-injection campaign once for the whole benchmark session."""
    config = CampaignConfig(faults_per_scenario=bench_faults(), seed=2018, keep_individual_results=False)
    runner = CampaignRunner(config, workers=bench_workers(), faults_per_job=8)
    database = runner.run_suite(bench_scenarios())
    database.metadata["faults_per_scenario"] = bench_faults()
    database.metadata["scenarios"] = len(database)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    database.export_csv(OUTPUT_DIR / "campaign_summary.csv")
    return database


@pytest.fixture(scope="session")
def golden_results():
    """Golden runs (no faults) of the benchmark scenario subset."""
    runner = GoldenRunner(model_caches=False)
    return [runner.run(scenario, collect_stats=False) for scenario in bench_scenarios()]
