"""Section 4.2 — parallelization API analysis (masking, balance, vulnerability window)."""

from bench_helpers import bench_scenarios, write_output

from repro.analysis.section42 import render_section42, section42_summary
from repro.profiling.functional import FunctionalProfiler


def test_bench_section42(benchmark, campaign_database, golden_results):
    # profile a couple of parallel scenarios for the vulnerability window
    profiler = FunctionalProfiler()
    parallel = [s for s in bench_scenarios() if s.mode in ("omp", "mpi") and s.isa == "armv8"][:4]
    profiles = [profiler.run(scenario) for scenario in parallel]

    summary = benchmark(section42_summary, campaign_database, golden_results, profiles)
    write_output("section42.txt", render_section42(summary))

    masking = summary["masking"]
    assert masking["total_comparisons"] > 0
    # paper shape: MPI masks at least as well as OpenMP in most comparisons
    # (38 of 44 in the paper).  With the small default fault count this is a
    # statistical claim, so the hard gate only requires MPI to win somewhere;
    # the full distribution is recorded in section42.txt.
    assert masking["total_mpi_wins"] >= 1
    # paper shape: MPI balances work across cores better than OpenMP
    balance = summary["load_balance_pct"]
    assert balance["mpi"] <= balance["omp"] + 5.0
    # paper shape: the parallelisation API occupies a limited vulnerability window (< 23%)
    window = summary["vulnerability_window"]
    assert window["max"] < 0.5
