"""Figure 3 — ARMv8 fault classification per application, API and core count."""

from bench_helpers import write_output

from repro.analysis.figures23 import figure_data, render_figure


def test_bench_figure3(benchmark, campaign_database):
    data = benchmark(figure_data, campaign_database, "armv8")
    write_output("figure3.txt", render_figure(campaign_database, "armv8"))

    assert data["mpi_panel"] and data["omp_panel"]
    for row in data["mpi_panel"] + data["omp_panel"]:
        total = row["Vanished"] + row["ONA"] + row["OMM"] + row["UT"] + row["Hang"]
        assert abs(total - 100.0) < 0.6
    # masking (Vanished + ONA) should be substantial in every scenario
    for row in data["omp_panel"]:
        assert row["Vanished"] + row["ONA"] > 20.0
