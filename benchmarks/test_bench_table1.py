"""Table 1 — NPB workload summary (instructions and simulation time per ISA).

Shape to reproduce: the ARMv7 runs execute far more instructions (and
take far longer) than the ARMv8 runs because the compiler lowers ARMv7
floating point to the software float library.
"""

from bench_helpers import write_output

from repro.analysis.table1 import instruction_ratio, render_table1, table1_rows


def test_bench_table1(benchmark, golden_results):
    rows = benchmark(table1_rows, golden_results, 8000)
    text = render_table1(rows)
    write_output("table1.txt", text + f"\n\nARMv7/ARMv8 instruction ratio: {instruction_ratio(golden_results):.1f}x")

    # paper shape: ARMv7 executes many times more instructions than ARMv8
    assert instruction_ratio(golden_results) > 3.0
    v7_instr = next(r for r in rows if r["metric"] == "executed_instructions" and r["isa"] == "armv7")
    v8_instr = next(r for r in rows if r["metric"] == "executed_instructions" and r["isa"] == "armv8")
    assert v7_instr["average"] > v8_instr["average"]
    assert v7_instr["larger"] >= v7_instr["average"] >= v7_instr["smaller"]
