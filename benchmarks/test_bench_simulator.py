"""Ablation benchmark: simulator throughput with and without cache modelling.

DESIGN.md calls out the decision to disable the cache model during
injection runs (outcomes are architectural) while keeping it for golden
profiling runs; this benchmark quantifies that trade-off.

Only ``system.run`` is inside the measured region (system construction
and workload launch happen in the per-round setup), so the number is
the interpreter/engine throughput the campaign actually sees — the
quantity the PR 5 pre-decoded block engine is gated on (see
``test_bench_engine.py`` and ``BENCH_PR5.json``).
"""

import pytest

from repro.npb.suite import Scenario, build_program, create_system, launch_scenario


def _make_system(model_caches: bool):
    scenario = Scenario("IS", "serial", 1, "armv8")
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario, model_caches=model_caches)
    launch_scenario(system, scenario, program)
    return (system,), {}


def _run(system):
    system.run(max_instructions=2_000_000)
    return system.total_instructions


@pytest.mark.parametrize("model_caches", [False, True], ids=["no-caches", "with-caches"])
def test_bench_simulator_throughput(benchmark, model_caches):
    instructions = benchmark.pedantic(
        _run, setup=lambda: _make_system(model_caches), warmup_rounds=1, rounds=5
    )
    assert instructions > 10_000
