"""Ablation benchmark: simulator throughput with and without cache modelling.

DESIGN.md calls out the decision to disable the cache model during
injection runs (outcomes are architectural) while keeping it for golden
profiling runs; this benchmark quantifies that trade-off.
"""

import pytest

from repro.npb.suite import Scenario, build_program, create_system, launch_scenario


def _run(model_caches: bool) -> int:
    scenario = Scenario("IS", "serial", 1, "armv8")
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario, model_caches=model_caches)
    launch_scenario(system, scenario, program)
    system.run(max_instructions=2_000_000)
    return system.total_instructions


@pytest.mark.parametrize("model_caches", [False, True], ids=["no-caches", "with-caches"])
def test_bench_simulator_throughput(benchmark, model_caches):
    instructions = benchmark(_run, model_caches)
    assert instructions > 10_000
