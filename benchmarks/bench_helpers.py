"""Helpers shared by the benchmark harness (scenario selection, output files)."""

from __future__ import annotations

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.npb.suite import Scenario, build_scenario_suite

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

DEFAULT_APPS = ("IS", "EP", "MG", "LU")
#: extra ARMv8-only scenarios needed by Table 4 (cheap to run)
TABLE4_EXTRA = [
    ("SP", "omp", 1), ("SP", "omp", 2), ("SP", "omp", 4),
    ("FT", "mpi", 1), ("FT", "mpi", 2), ("FT", "mpi", 4),
    ("SP", "serial", 1), ("FT", "serial", 1),
    ("FT", "omp", 1), ("FT", "omp", 2), ("FT", "omp", 4),
]


def bench_faults() -> int:
    return int(os.environ.get("REPRO_BENCH_FAULTS", "24"))


def bench_workers() -> int:
    requested = os.environ.get("REPRO_BENCH_WORKERS")
    if requested is not None:
        return int(requested)
    return min(8, os.cpu_count() or 1)


def bench_scenarios() -> list[Scenario]:
    suite = build_scenario_suite()
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return list(suite)
    apps = tuple(os.environ.get("REPRO_BENCH_APPS", ",".join(DEFAULT_APPS)).split(","))
    selected = list(suite.filter(apps=apps))
    existing = {s.scenario_id for s in selected}
    for app, mode, cores in TABLE4_EXTRA:
        scenario = Scenario(app, mode, cores, "armv8")
        if scenario.scenario_id not in existing:
            selected.append(scenario)
    return selected


def write_output(name: str, text: str) -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
