"""Perf gates for the pre-decoded block execution engine (PR 5 + PR 6).

Measures guest-MIPS of the block engine against the reference
interpreter (``engine=False`` — the seed's ``Core.step`` loop) on the
campaign shapes:

* **injection-run shape** — caches off, the configuration every fault
  injection executes in (the paper's throughput-critical path);
* **golden-run shape** — caches on, the profiling configuration whose
  hit/miss statistics feed the mining stage.  PR 6 extended superblock
  fusion to this shape (compiled I-fetch batching + inline D-access
  accounting), closing the cached-shape gap the PR 5 record shows
  (1.17x with caches vs 2.4-2.7x without).

Results are written to ``BENCH_PR6.json`` at the repository root so
future PRs have a perf trajectory to compare against.  Two hard gates:

* no-caches shape: engine >= 2x the slow path (preserved PR 5 gate;
  the slow path already carries the shared-layer speedups, so 2x
  against it is the conservative bound for the 3x-vs-seed target);
* with-caches shape: engine >= 1.5x the slow path (PR 6 gate — the
  slow path itself got faster from the restructured ``Cache.access``,
  so the ratio is measured against a moving floor).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.npb.suite import Scenario, build_program, create_system, launch_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PR6.json"

#: Seed-tree throughput of the no-caches shape (measured on the PR 4
#: tree with the identical workload/budget), the baseline for the
#: ">=3x on the injection-run configuration" acceptance line of PR 5.
SEED_NO_CACHES_MIPS = 1.08

#: PR 5 record of the with-caches shape before the cached compile tier:
#: engine 0.77 MIPS / 1.17x over the slow path on this workload family
#: (see ROADMAP PR 5 notes; BENCH_PR5.json measured 2.0 MIPS on the
#: short IS run whose compile tier was already warm).
PR5_WITH_CACHES_SPEEDUP = 1.17

#: Engine must beat the (already sped-up) slow path by these factors.
MIN_NO_CACHES_SPEEDUP = 2.0
MIN_WITH_CACHES_SPEEDUP = 1.5

#: name -> (scenario, model_caches, timed rounds)
SHAPES = {
    "injection-run IS-armv8 no-caches": (Scenario("IS", "serial", 1, "armv8"), False, 5),
    "injection-run LU-armv7 no-caches": (Scenario("LU", "serial", 1, "armv7"), False, 3),
    "golden-run IS-armv8 with-caches": (Scenario("IS", "serial", 1, "armv8"), True, 5),
    "golden-run LU-armv7 with-caches": (Scenario("LU", "serial", 1, "armv7"), True, 3),
}

#: shape name -> minimum engine/slow-path speedup enforced in CI
GATES = {
    "injection-run IS-armv8 no-caches": MIN_NO_CACHES_SPEEDUP,
    "golden-run IS-armv8 with-caches": MIN_WITH_CACHES_SPEEDUP,
}

BUDGET = 2_000_000


def _launched(scenario, model_caches, engine):
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario, model_caches=model_caches, engine=engine)
    launch_scenario(system, scenario, program)
    return system


def _timed_run(scenario, model_caches, engine) -> tuple[float, int]:
    system = _launched(scenario, model_caches, engine)
    start = time.perf_counter()
    system.run(max_instructions=BUDGET)
    return time.perf_counter() - start, system.total_instructions


def _throughputs(scenario, model_caches, rounds) -> tuple[float, float, int]:
    """Best-of-N guest MIPS for (engine, slow path), setup excluded.

    Rounds interleave the two configurations so a transient load spike
    on a shared runner hits both symmetrically instead of biasing the
    ratio the gate asserts on.
    """
    # Warm the program build, decode cache and superblock compile tier.
    for engine in (True, False):
        _launched(scenario, model_caches, engine).run(max_instructions=BUDGET)
    best = {True: float("inf"), False: float("inf")}
    instructions = 0
    for _ in range(rounds):
        for engine in (True, False):
            elapsed, instructions = _timed_run(scenario, model_caches, engine)
            best[engine] = min(best[engine], elapsed)
    return instructions / best[True] / 1e6, instructions / best[False] / 1e6, instructions


def test_bench_engine_vs_slow_path():
    shapes = {}
    for name, (scenario, model_caches, rounds) in SHAPES.items():
        engine_mips, slow_mips, instructions = _throughputs(scenario, model_caches, rounds)
        shapes[name] = {
            "scenario": scenario.scenario_id,
            "model_caches": model_caches,
            "instructions": instructions,
            "engine_mips": round(engine_mips, 3),
            "slow_path_mips": round(slow_mips, 3),
            "speedup": round(engine_mips / slow_mips, 3),
        }

    gates = {
        name: {
            "min_speedup": minimum,
            "measured_speedup": shapes[name]["speedup"],
            "passed": shapes[name]["speedup"] >= minimum,
        }
        for name, minimum in GATES.items()
    }
    payload = {
        "benchmark": "block engine vs reference interpreter, cached + uncached shapes (PR 6)",
        "budget_instructions": BUDGET,
        "shapes": shapes,
        "history": {
            "seed_no_caches_mips": SEED_NO_CACHES_MIPS,
            "pr5_with_caches_speedup": PR5_WITH_CACHES_SPEEDUP,
            "note": (
                "MIPS values are host-dependent; cross-PR comparisons should use "
                "the same-run engine/slow-path speedup ratios"
            ),
        },
        "gates": gates,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for name, gate in gates.items():
        assert gate["passed"], (
            f"engine is only {gate['measured_speedup']:.2f}x the slow path on "
            f"'{name}' (gate: {gate['min_speedup']}x) — see {RESULT_PATH}"
        )
