"""Perf gate for the pre-decoded block execution engine (PR 5).

Measures guest-MIPS of the block engine against the reference
interpreter (``engine=False`` — the seed's ``Core.step`` loop) on the
two campaign shapes:

* **injection-run shape** — caches off, the configuration every fault
  injection executes in (the paper's throughput-critical path);
* **golden-run shape** — caches on, the profiling configuration.

Results are written to ``BENCH_PR5.json`` at the repository root so
future PRs have a perf trajectory to compare against.  The hard gate:
the engine must be at least 2x the slow path on the no-caches shape
(the PR's acceptance target against the *seed* interpreter is 3x; the
slow path measured here already carries this PR's shared-layer
speedups — memory fast paths, table dispatch — so 2x against it is the
conservative bound).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.npb.suite import Scenario, build_program, create_system, launch_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PR5.json"

#: Seed-tree throughput of this benchmark's no-caches shape (measured on
#: the PR 4 tree with the identical workload/budget), the baseline for
#: the PR's ">=3x on the injection-run configuration" acceptance line.
SEED_NO_CACHES_MIPS = 1.08

#: Engine must beat the (already sped-up) slow path by this factor on
#: the no-caches shape.
MIN_NO_CACHES_SPEEDUP = 2.0

#: name -> (scenario, model_caches, timed rounds)
SHAPES = {
    "injection-run IS-armv8 no-caches": (Scenario("IS", "serial", 1, "armv8"), False, 5),
    "injection-run LU-armv7 no-caches": (Scenario("LU", "serial", 1, "armv7"), False, 3),
    "golden-run IS-armv8 with-caches": (Scenario("IS", "serial", 1, "armv8"), True, 3),
}

GATE_SHAPE = "injection-run IS-armv8 no-caches"
BUDGET = 2_000_000


def _launched(scenario, model_caches, engine):
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario, model_caches=model_caches, engine=engine)
    launch_scenario(system, scenario, program)
    return system


def _timed_run(scenario, model_caches, engine) -> tuple[float, int]:
    system = _launched(scenario, model_caches, engine)
    start = time.perf_counter()
    system.run(max_instructions=BUDGET)
    return time.perf_counter() - start, system.total_instructions


def _throughputs(scenario, model_caches, rounds) -> tuple[float, float, int]:
    """Best-of-N guest MIPS for (engine, slow path), setup excluded.

    Rounds interleave the two configurations so a transient load spike
    on a shared runner hits both symmetrically instead of biasing the
    ratio the gate asserts on.
    """
    # Warm the program build, decode cache and superblock compile tier.
    for engine in (True, False):
        _launched(scenario, model_caches, engine).run(max_instructions=BUDGET)
    best = {True: float("inf"), False: float("inf")}
    instructions = 0
    for _ in range(rounds):
        for engine in (True, False):
            elapsed, instructions = _timed_run(scenario, model_caches, engine)
            best[engine] = min(best[engine], elapsed)
    return instructions / best[True] / 1e6, instructions / best[False] / 1e6, instructions


def test_bench_engine_vs_slow_path():
    shapes = {}
    for name, (scenario, model_caches, rounds) in SHAPES.items():
        engine_mips, slow_mips, instructions = _throughputs(scenario, model_caches, rounds)
        shapes[name] = {
            "scenario": scenario.scenario_id,
            "model_caches": model_caches,
            "instructions": instructions,
            "engine_mips": round(engine_mips, 3),
            "slow_path_mips": round(slow_mips, 3),
            "speedup": round(engine_mips / slow_mips, 3),
        }

    gate = shapes[GATE_SHAPE]
    payload = {
        "benchmark": "pre-decoded block engine vs reference interpreter (PR 5)",
        "budget_instructions": BUDGET,
        "shapes": shapes,
        "seed_baseline": {
            "shape": GATE_SHAPE,
            "no_caches_mips": SEED_NO_CACHES_MIPS,
            "engine_speedup_vs_seed": round(gate["engine_mips"] / SEED_NO_CACHES_MIPS, 3),
            "note": (
                "baseline measured on the PR 4 tree on the development container; "
                "the vs-seed ratio is only meaningful on comparable hosts — "
                "cross-PR comparisons should use the same-run engine/slow-path speedup"
            ),
        },
        "gate": {
            "min_speedup_no_caches": MIN_NO_CACHES_SPEEDUP,
            "measured_speedup": gate["speedup"],
            "passed": gate["speedup"] >= MIN_NO_CACHES_SPEEDUP,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    assert gate["speedup"] >= MIN_NO_CACHES_SPEEDUP, (
        f"engine is only {gate['speedup']:.2f}x the slow path on the no-caches "
        f"shape (gate: {MIN_NO_CACHES_SPEEDUP}x) — see {RESULT_PATH}"
    )
