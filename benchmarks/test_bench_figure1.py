"""Figure 1 — processor evolution (introduction figure)."""

from bench_helpers import write_output

from repro.analysis.figure1 import figure1_data, render_figure1, scaling_trends


def test_bench_figure1(benchmark):
    data = benchmark(figure1_data)
    assert len(data) >= 10
    trends = scaling_trends()
    assert trends["transistor_growth"] > 1e5
    assert trends["min_node_nm"] == 10
    write_output("figure1.txt", render_figure1())
