"""Table 2 — Hang occurrence vs normalised (function calls x branches) index (IS)."""

from bench_helpers import write_output

from repro.analysis.table2 import index_tracks_hangs, render_table2, table2_rows


def test_bench_table2(benchmark, campaign_database):
    rows = benchmark(table2_rows, campaign_database)
    write_output("table2.txt", render_table2(rows))

    assert rows, "IS scenarios missing from the campaign subset"
    # the single-core configuration of each group is the normalisation baseline
    for row in rows:
        if row["cores"] == 1:
            assert abs(row["fb_index"] - 1.0) < 1e-6
    # paper shape: the F*B index does not decrease when the core count grows
    verdict = index_tracks_hangs(rows)
    assert all(verdict.values()), verdict
