"""Table 4 — ARMv8 memory transactions and soft error classification (LU/SP OMP, FT MPI)."""

from bench_helpers import write_output

from repro.analysis.tables34 import render_memory_table, table4_rows


def test_bench_table4(benchmark, campaign_database):
    rows = benchmark(table4_rows, campaign_database)
    write_output("table4.txt", render_memory_table(rows, 4))

    assert rows, "LU/SP/FT ARMv8 scenarios missing from the campaign subset"
    for row in rows:
        assert 0.0 <= row["ut_pct"] <= 100.0
        assert 0.0 < row["mem_inst_pct"] < 100.0
        assert row["rd_wr_ratio"] > 0.0
    # FT keeps a nearly constant memory-instruction share across core counts
    ft = [row for row in rows if row["scenario"].startswith("FT")]
    if len(ft) == 3:
        shares = [row["mem_inst_pct"] for row in ft]
        assert max(shares) - min(shares) < 15.0
