"""Efficiency gate for the CI-driven adaptive sampling engine (PR 9).

For each benchmark scenario the adaptive controller runs to a target
half-width and is charged against the classical fixed-count design for
the same guarantee (``n = ceil(z^2/4w^2)`` — the count a one-shot
campaign must pick to promise that interval on every tracked rate).
A fixed campaign of exactly that size then runs as the accuracy twin:
the adaptive estimates must agree with it to within the two intervals'
combined half-widths.

Results go to ``BENCH_PR9.json`` at the repository root.  Hard gates:

* every adaptive run converges (stopping rule fires before the budget);
* every achieved half-width is at or under the plan's target;
* the mean fixed/spent saving is at least 3x;
* adaptive point estimates agree with the fixed-count twin's.

A second adaptive pass steered by a prior mined from the fixed twin's
results is recorded alongside (spent, batches, stopping) to track what
mining buys; it shares the convergence gates but not the saving gate —
a prior reshapes early allocation, it does not promise fewer faults on
every workload.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.efficiency_table import fixed_equivalent, render_efficiency_table
from repro.injection.campaign import CampaignConfig, ScenarioCampaign
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.stats import STOP_CONVERGED, MinedPrior, SamplingPlan

from bench_helpers import write_output

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PR9.json"

PLAN = SamplingPlan(
    target_half_width=0.05,
    confidence=0.95,
    min_faults=48,
    max_faults=1024,
    batch_size=48,
)
CONFIG = CampaignConfig(seed=2018)

SCENARIOS = [
    Scenario("IS", "serial", 1, "armv7"),
    Scenario("IS", "serial", 1, "armv8"),
    Scenario("EP", "serial", 1, "armv7"),
]

#: Mean fixed/spent ratio the adaptive engine must clear.
MIN_AVERAGE_SAVING = 3.0


def _estimate_agreement(adaptive: dict, fixed_report) -> list[dict]:
    """Per-rate comparison of adaptive vs fixed-count estimates.

    Agreement criterion: the two point estimates lie within the sum of
    the two interval half-widths of each other — the loosest claim both
    intervals jointly support.
    """
    from repro.stats import outcome_estimates

    fixed_estimates = outcome_estimates(fixed_report.counts, PLAN.confidence, PLAN.method)
    rows = []
    for rate, estimate in adaptive["estimates"].items():
        fixed = fixed_estimates[rate]
        tolerance = estimate["half_width"] + fixed.half_width
        rows.append(
            {
                "rate": rate,
                "adaptive": round(estimate["estimate"], 4),
                "fixed": round(fixed.estimate, 4),
                "tolerance": round(tolerance, 4),
                "agree": abs(estimate["estimate"] - fixed.estimate) <= tolerance,
            }
        )
    return rows


def test_bench_adaptive_vs_fixed_count():
    fixed_count = fixed_equivalent(PLAN.target_half_width, PLAN.confidence)
    database = ResultsDatabase()
    scenarios_payload = {}
    fixed_reports = []

    for scenario in SCENARIOS:
        campaign = ScenarioCampaign(scenario, CONFIG)
        report = campaign.run_adaptive(PLAN)
        database.add_report(report)
        fixed_report = ScenarioCampaign(scenario, CONFIG).run(count=fixed_count)
        fixed_reports.append(fixed_report)
        adaptive = report.adaptive
        achieved = max(e["half_width"] for e in adaptive["estimates"].values())
        scenarios_payload[scenario.scenario_id] = {
            "spent": adaptive["spent"],
            "batches": len(adaptive["batches"]),
            "stopping": adaptive["stopping"],
            "achieved_half_width": round(achieved, 4),
            "fixed_equivalent": fixed_count,
            "saving": round(fixed_count / adaptive["spent"], 3),
            "strata_sampled": adaptive["strata_sampled"],
            "agreement": _estimate_agreement(adaptive, fixed_report),
        }

    # Prior-steered pass: mine the fixed twins (a completed calibration
    # campaign), then rerun adaptively with the prior in the loop.
    prior = MinedPrior.from_reports(fixed_reports)
    for scenario in SCENARIOS:
        steered = ScenarioCampaign(scenario, CONFIG).run_adaptive(PLAN, prior=prior)
        adaptive = steered.adaptive
        scenarios_payload[scenario.scenario_id]["prior_steered"] = {
            "spent": adaptive["spent"],
            "batches": len(adaptive["batches"]),
            "stopping": adaptive["stopping"],
            "achieved_half_width": round(
                max(e["half_width"] for e in adaptive["estimates"].values()), 4
            ),
            "saving": round(fixed_count / adaptive["spent"], 3),
        }

    savings = [entry["saving"] for entry in scenarios_payload.values()]
    average = sum(savings) / len(savings)
    payload = {
        "benchmark": "adaptive CI-driven sampling vs fixed-count campaigns (PR 9)",
        "plan": PLAN.as_dict(),
        "seed": CONFIG.seed,
        "fixed_equivalent": fixed_count,
        "scenarios": scenarios_payload,
        "average_saving": round(average, 3),
        "gates": {
            "min_average_saving": MIN_AVERAGE_SAVING,
            "passed": average >= MIN_AVERAGE_SAVING,
        },
        "prior": {"cells": len(prior.cells), "scenarios": prior.scenarios},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    from repro.analysis.efficiency_table import efficiency_rows

    write_output(
        "efficiency_table.txt",
        render_efficiency_table(efficiency_rows(database, PLAN.as_dict())),
    )

    for scenario_id, entry in scenarios_payload.items():
        assert entry["stopping"] == STOP_CONVERGED, (
            f"{scenario_id} hit the fault budget instead of converging — see {RESULT_PATH}"
        )
        assert entry["achieved_half_width"] <= PLAN.target_half_width
        assert entry["prior_steered"]["stopping"] == STOP_CONVERGED
        assert entry["prior_steered"]["achieved_half_width"] <= PLAN.target_half_width
        for row in entry["agreement"]:
            assert row["agree"], (
                f"{scenario_id} {row['rate']}: adaptive {row['adaptive']} vs fixed "
                f"{row['fixed']} disagree beyond ±{row['tolerance']}"
            )
    assert average >= MIN_AVERAGE_SAVING, (
        f"average saving {average:.2f}x is below the {MIN_AVERAGE_SAVING}x gate — "
        f"see {RESULT_PATH}"
    )
