"""Figure 2 — ARMv7 fault classification per application, API and core count."""

from bench_helpers import write_output

from repro.analysis.figures23 import figure_data, render_figure


def test_bench_figure2(benchmark, campaign_database):
    data = benchmark(figure_data, campaign_database, "armv7")
    write_output("figure2.txt", render_figure(campaign_database, "armv7"))

    assert data["mpi_panel"], "no ARMv7 MPI scenarios in the campaign subset"
    assert data["omp_panel"], "no ARMv7 OMP scenarios in the campaign subset"
    # every bar is a complete percentage breakdown
    for row in data["mpi_panel"] + data["omp_panel"]:
        total = row["Vanished"] + row["ONA"] + row["OMM"] + row["UT"] + row["Hang"]
        assert abs(total - 100.0) < 0.6
    # the mismatch panel is bounded (the paper's axis spans -35..+35)
    for row in data["mismatch_panel"]:
        assert row["total_mismatch"] >= 0.0
