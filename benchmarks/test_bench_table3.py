"""Table 3 — ARMv7 memory transactions and soft error classification (MG, IS MPI)."""

from bench_helpers import write_output

from repro.analysis.tables34 import memory_ut_correlation, render_memory_table, table3_rows


def test_bench_table3(benchmark, campaign_database):
    rows = benchmark(table3_rows, campaign_database)
    write_output("table3.txt", render_memory_table(rows, 3))

    assert rows, "MG/IS ARMv7 MPI scenarios missing from the campaign subset"
    for row in rows:
        assert 0.0 <= row["ut_pct"] <= 100.0
        assert row["mem_inst_pct"] > 0.0
    # paper shape: memory-instruction share and UT share move together
    if len(rows) >= 4:
        assert memory_ut_correlation(rows) > -0.5
